"""A B+-tree of byte-string keys and values.

This is the plain search structure underneath the Merkle tree of
Section 4.1: "a B+-tree [15] where the leaf nodes of the tree contain
data, and the internal nodes contain keys and tree pointers".

Design notes
------------
* ``order`` is the maximum number of children of an internal node (the
  paper's branching factor ``m + 1``).  Leaves hold at most
  ``order - 1`` entries; both node kinds must stay at least half full
  (the root is exempt).
* Mutating operations clear the cached ``digest`` attribute on every
  node they touch, so the Merkle layer (:mod:`repro.mtree.merkle`) can
  recompute digests lazily along dirty paths only -- this is what makes
  a single update cost O(log n) digest work.
* Keys are ``bytes`` and are compared lexicographically, matching how
  they are committed into node digests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator

DEFAULT_ORDER = 8


class LeafNode:
    """A leaf holding sorted (key, value) entries and a next-leaf link.

    ``entry_digests`` mirrors ``keys``/``values`` entry-for-entry: each
    slot caches ``hash_leaf(key, value)`` (``None`` = not yet hashed).
    Mutations keep the list aligned but only clear the slots they touch,
    so recomputing a leaf digest after an update re-hashes one entry
    instead of all ``order - 1`` of them.
    """

    __slots__ = ("keys", "values", "next_leaf", "digest", "entry_digests")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[bytes] = []
        self.next_leaf: LeafNode | None = None
        self.digest = None  # cache managed by the Merkle layer
        self.entry_digests: list = []  # per-entry cache, same arity as keys

    @property
    def is_leaf(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"LeafNode({[k.decode('utf-8', 'replace') for k in self.keys]})"


class InternalNode:
    """An internal node: separator keys and child pointers.

    ``keys[i]`` is the smallest key reachable in ``children[i + 1]``, so
    a lookup for ``k`` follows ``children[bisect_right(keys, k)]``.
    """

    __slots__ = ("keys", "children", "digest")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.children: list[LeafNode | InternalNode] = []
        self.digest = None  # cache managed by the Merkle layer

    @property
    def is_leaf(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"InternalNode(keys={[k.decode('utf-8', 'replace') for k in self.keys]}, fanout={len(self.children)})"


class BPlusTree:
    """A B+-tree mapping ``bytes`` keys to ``bytes`` values."""

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 3:
            raise ValueError("order must be at least 3")
        self._order = order
        self._root: LeafNode | InternalNode = LeafNode()
        self._size = 0

    # -- basic properties -------------------------------------------------

    @property
    def order(self) -> int:
        return self._order

    @property
    def root(self) -> LeafNode | InternalNode:
        return self._root

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    @property
    def _max_entries(self) -> int:
        return self._order - 1

    @property
    def _min_entries(self) -> int:
        return (self._order - 1) // 2

    @property
    def _min_children(self) -> int:
        return (self._order + 1) // 2

    # -- lookup ------------------------------------------------------------

    def _child_index(self, node: InternalNode, key: bytes) -> int:
        """Index of the child to descend into for ``key``."""
        return bisect_right(node.keys, key)

    def search_path(self, key: bytes) -> list[LeafNode | InternalNode]:
        """The root-to-leaf node path a lookup for ``key`` follows."""
        path: list[LeafNode | InternalNode] = []
        node: LeafNode | InternalNode = self._root
        while True:
            path.append(node)
            if node.is_leaf:
                return path
            node = node.children[self._child_index(node, key)]

    def get(self, key: bytes) -> bytes | None:
        """The value stored for ``key``, or ``None``."""
        leaf = self.search_path(key)[-1]
        for stored_key, value in zip(leaf.keys, leaf.values):
            if stored_key == key:
                return value
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All entries in key order, via the leaf chain."""
        node: LeafNode | InternalNode = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: LeafNode | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[bytes]:
        for key, _value in self.items():
            yield key

    def range(self, low: bytes, high: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Entries with ``low <= key <= high``, in key order."""
        if low > high:
            return
        leaf = self.search_path(low)[-1]
        current: LeafNode | None = leaf
        while current is not None:
            for key, value in zip(current.keys, current.values):
                if key < low:
                    continue
                if key > high:
                    return
                yield (key, value)
            current = current.next_leaf

    # -- insertion -----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite ``key``.

        Returns ``True`` if a new key was inserted, ``False`` if an
        existing key's value was overwritten.
        """
        _check_key_value(key, value)
        path = self.search_path(key)
        leaf = path[-1]
        for node in path:
            node.digest = None

        # Overwrite in place if the key already exists.
        for index, stored_key in enumerate(leaf.keys):
            if stored_key == key:
                leaf.values[index] = value
                leaf.entry_digests[index] = None
                return False

        position = _sorted_position(leaf.keys, key)
        leaf.keys.insert(position, key)
        leaf.values.insert(position, value)
        leaf.entry_digests.insert(position, None)
        self._size += 1

        if len(leaf.keys) > self._max_entries:
            self._split_up(path)
        return True

    def _split_up(self, path: list[LeafNode | InternalNode]) -> None:
        """Split the overfull node at the end of ``path``, propagating up."""
        node = path[-1]
        parents = path[:-1]
        while True:
            if node.is_leaf:
                separator, sibling = self._split_leaf(node)
            else:
                separator, sibling = self._split_internal(node)
            if not parents:
                new_root = InternalNode()
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self._root = new_root
                return
            parent = parents.pop()
            assert not parent.is_leaf
            parent.digest = None
            child_pos = parent.children.index(node)
            parent.keys.insert(child_pos, separator)
            parent.children.insert(child_pos + 1, sibling)
            if len(parent.children) <= self._order:
                return
            node = parent

    def _split_leaf(self, leaf: LeafNode) -> tuple[bytes, LeafNode]:
        """Split ``leaf`` in half; returns (separator, right sibling)."""
        middle = (len(leaf.keys) + 1) // 2
        sibling = LeafNode()
        sibling.keys = leaf.keys[middle:]
        sibling.values = leaf.values[middle:]
        sibling.entry_digests = leaf.entry_digests[middle:]
        sibling.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.entry_digests = leaf.entry_digests[:middle]
        leaf.next_leaf = sibling
        leaf.digest = None
        return sibling.keys[0], sibling

    def _split_internal(self, node: InternalNode) -> tuple[bytes, InternalNode]:
        """Split an overfull internal node; the middle key moves up."""
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = InternalNode()
        sibling.keys = node.keys[middle + 1:]
        sibling.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        node.digest = None
        return separator, sibling

    # -- deletion -----------------------------------------------------------

    def delete(self, key: bytes) -> bool:
        """Delete ``key``; returns ``True`` iff it was present."""
        if not isinstance(key, bytes):
            raise TypeError("keys must be bytes")
        path = self.search_path(key)
        leaf = path[-1]
        if key not in leaf.keys:
            return False
        for node in path:
            node.digest = None
        position = leaf.keys.index(key)
        del leaf.keys[position]
        del leaf.values[position]
        del leaf.entry_digests[position]
        self._size -= 1
        self._rebalance_up(path)
        return True

    def _rebalance_up(self, path: list[LeafNode | InternalNode]) -> None:
        """Fix underflow at the end of ``path``, propagating toward the root."""
        node = path[-1]
        parents = path[:-1]
        while parents:
            parent = parents[-1]
            assert not parent.is_leaf
            if node.is_leaf:
                underfull = len(node.keys) < self._min_entries
            else:
                underfull = len(node.children) < self._min_children
            if not underfull:
                # Separator keys on the path may now be stale (the
                # deleted key may have been a separator), but a stale
                # separator is still a correct partition bound, so no
                # repair is needed.
                return
            parent.digest = None
            child_pos = parent.children.index(node)
            if child_pos > 0 and self._can_lend(parent.children[child_pos - 1]):
                self._borrow_from_left(parent, child_pos)
                return
            if child_pos + 1 < len(parent.children) and self._can_lend(parent.children[child_pos + 1]):
                self._borrow_from_right(parent, child_pos)
                return
            if child_pos > 0:
                self._merge_children(parent, child_pos - 1)
            else:
                self._merge_children(parent, child_pos)
            node = parents.pop()
        # ``node`` is the root.
        if not node.is_leaf and len(node.children) == 1:
            self._root = node.children[0]

    def _can_lend(self, node: LeafNode | InternalNode) -> bool:
        if node.is_leaf:
            return len(node.keys) > self._min_entries
        return len(node.children) > self._min_children

    def _borrow_from_left(self, parent: InternalNode, child_pos: int) -> None:
        left = parent.children[child_pos - 1]
        node = parent.children[child_pos]
        left.digest = None
        node.digest = None
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            node.entry_digests.insert(0, left.entry_digests.pop())
            parent.keys[child_pos - 1] = node.keys[0]
        else:
            # Rotate through the parent separator.
            node.keys.insert(0, parent.keys[child_pos - 1])
            node.children.insert(0, left.children.pop())
            parent.keys[child_pos - 1] = left.keys.pop()

    def _borrow_from_right(self, parent: InternalNode, child_pos: int) -> None:
        node = parent.children[child_pos]
        right = parent.children[child_pos + 1]
        node.digest = None
        right.digest = None
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            node.entry_digests.append(right.entry_digests.pop(0))
            parent.keys[child_pos] = right.keys[0]
        else:
            node.keys.append(parent.keys[child_pos])
            node.children.append(right.children.pop(0))
            parent.keys[child_pos] = right.keys.pop(0)

    def _merge_children(self, parent: InternalNode, left_pos: int) -> None:
        """Merge ``children[left_pos + 1]`` into ``children[left_pos]``."""
        left = parent.children[left_pos]
        right = parent.children[left_pos + 1]
        left.digest = None
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.entry_digests.extend(right.entry_digests)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_pos])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_pos]
        del parent.children[left_pos + 1]

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every structural B+-tree invariant; raises AssertionError.

        Used heavily by the property-based tests.
        """
        leaf_depths: set[int] = set()
        count = self._check_node(self._root, depth=0, is_root=True,
                                 lower=None, upper=None, leaf_depths=leaf_depths)
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"
        assert len(leaf_depths) == 1, f"leaves at different depths: {leaf_depths}"
        self._check_leaf_chain()

    def _check_node(self, node, depth, is_root, lower, upper, leaf_depths) -> int:
        if node.is_leaf:
            leaf_depths.add(depth)
            assert node.keys == sorted(node.keys), "leaf keys out of order"
            assert len(node.keys) == len(set(node.keys)), "duplicate keys in leaf"
            assert len(node.keys) == len(node.values), "leaf key/value arity mismatch"
            assert len(node.keys) == len(node.entry_digests), "leaf entry-digest arity mismatch"
            assert len(node.keys) <= self._max_entries, "overfull leaf"
            if not is_root:
                assert len(node.keys) >= self._min_entries, "underfull leaf"
            for key in node.keys:
                assert lower is None or key >= lower, "leaf key below subtree lower bound"
                assert upper is None or key < upper, "leaf key above subtree upper bound"
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1, "internal arity mismatch"
        assert len(node.children) <= self._order, "overfull internal node"
        if is_root:
            assert len(node.children) >= 2, "internal root with a single child"
        else:
            assert len(node.children) >= self._min_children, "underfull internal node"
        assert node.keys == sorted(node.keys), "internal keys out of order"
        count = 0
        for index, child in enumerate(node.children):
            child_lower = node.keys[index - 1] if index > 0 else lower
            child_upper = node.keys[index] if index < len(node.keys) else upper
            count += self._check_node(child, depth + 1, False, child_lower, child_upper, leaf_depths)
        return count

    def _check_leaf_chain(self) -> None:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        chained = []
        leaf: LeafNode | None = node
        while leaf is not None:
            chained.extend(leaf.keys)
            leaf = leaf.next_leaf
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size, "leaf chain misses entries"

    def clone(self) -> "BPlusTree":
        """Structural copy: fresh nodes, shared immutable contents.

        Both the original and the copy may be mutated independently
        afterwards (attack forks, the simulator's oracle), so every
        node object is duplicated -- but the byte-string keys/values and
        cached :class:`Digest` objects they hold are immutable and
        therefore shared.  Far cheaper than ``copy.deepcopy``.
        """
        twin = BPlusTree(order=self._order)
        leaves: list[LeafNode] = []

        def copy_node(node):
            if node.is_leaf:
                leaf = LeafNode()
                leaf.keys = list(node.keys)
                leaf.values = list(node.values)
                leaf.entry_digests = list(node.entry_digests)
                leaf.digest = node.digest
                leaves.append(leaf)
                return leaf
            internal = InternalNode()
            internal.keys = list(node.keys)
            internal.children = [copy_node(child) for child in node.children]
            internal.digest = node.digest
            return internal

        twin._root = copy_node(self._root)
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right
        twin._size = self._size
        return twin

    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height


def _sorted_position(keys: list[bytes], key: bytes) -> int:
    return bisect_left(keys, key)


def _check_key_value(key: bytes, value: bytes) -> None:
    if not isinstance(key, bytes):
        raise TypeError("keys must be bytes")
    if not isinstance(value, bytes):
        raise TypeError("values must be bytes")
