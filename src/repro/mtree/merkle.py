"""The Merkle layer: digests over the B+-tree (paper Section 4.1).

"In a Merkle Tree, each node also stores a digest.  The digest stored
in a leaf node is the hash of the data stored at that node.  The digest
stored in an internal node is a hash of the concatenation of the
digests of the node's children."

We cache each node's digest on the node and invalidate lazily: every
mutating B+-tree operation clears the cached digest along the path it
touched, so recomputing the root digest after an update re-hashes only
O(log n) nodes.  ``digest_recomputations`` counts actual re-hashes,
which benchmark E2 uses to demonstrate the O(log n) claim.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest, hash_internal_node, hash_leaf, hash_leaf_node
from repro.mtree.bplus import DEFAULT_ORDER, BPlusTree, InternalNode, LeafNode
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

_RECOMPUTATIONS = _registry.counter(
    "mtree.node_recomputations", "Merkle nodes re-hashed after mutations")
_CACHE_HITS = _registry.counter(
    "mtree.digest_cache_hits", "node_digest calls served from the clean cache")


class MerkleBPlusTree:
    """A B+-tree whose every node carries a collision-intractable digest.

    The root digest ``M(D)`` commits to the full tree: all entries, all
    separator keys, and the tree shape.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        self._tree = BPlusTree(order=order)
        self.digest_recomputations = 0
        #: mutated since the storage layer's last checkpoint drained it;
        #: independent of the per-node digest cache, which refresh_root
        #: clears far more often than checkpoints run.
        self.checkpoint_dirty = False

    # -- delegated plain-tree API -----------------------------------------

    @property
    def order(self) -> int:
        return self._tree.order

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, key: bytes) -> bool:
        return key in self._tree

    def get(self, key: bytes) -> bytes | None:
        return self._tree.get(key)

    def items(self):
        return self._tree.items()

    def range(self, low: bytes, high: bytes):
        return self._tree.range(low, high)

    def height(self) -> int:
        return self._tree.height()

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    @property
    def tree(self) -> BPlusTree:
        """The underlying plain B+-tree (read-only use by the proof layer)."""
        return self._tree

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; invalidates digests along the touched path."""
        self.checkpoint_dirty = True
        return self._tree.insert(key, value)

    def delete(self, key: bytes) -> bool:
        """Delete ``key`` if present; invalidates digests along the path."""
        removed = self._tree.delete(key)
        if removed:
            self.checkpoint_dirty = True
        return removed

    def clone(self) -> "MerkleBPlusTree":
        """Structural copy sharing immutable entries and cached digests."""
        twin = MerkleBPlusTree.__new__(MerkleBPlusTree)
        twin._tree = self._tree.clone()
        twin.digest_recomputations = self.digest_recomputations
        twin.checkpoint_dirty = self.checkpoint_dirty
        return twin

    # -- digests -------------------------------------------------------------

    def root_digest(self) -> Digest:
        """The root digest ``M(D)``, recomputing only dirty nodes.

        All dirty nodes along the touched paths are recomputed in one
        iterative batch -- no recursion, so tree depth is unbounded.
        """
        return self.node_digest(self._tree.root)

    def leaf_entry_digests(self, node: LeafNode) -> list[Digest]:
        """Per-entry digests of ``node``, re-hashing only dirty entries.

        Each slot caches ``hash_leaf(key, value)``; mutations clear only
        the slots they touch, so an update re-hashes one entry instead
        of all ``order - 1``.  The proof layer reads the same cache when
        snapshotting leaves.
        """
        cache = node.entry_digests
        keys = node.keys
        values = node.values
        for index, digest in enumerate(cache):
            if digest is None:
                cache[index] = hash_leaf(keys[index], values[index])
        return cache

    def refresh_root(self) -> tuple[Digest, int]:
        """Recompute the root digest and report the work it took.

        Returns ``(root, recomputed)`` where ``recomputed`` is how many
        nodes this call re-hashed.  One call after a *batch* of
        mutations walks every dirty path in a single pass, so shared
        prefix nodes are hashed once for the whole batch instead of
        once per operation -- the amortisation the batched server path
        relies on.
        """
        before = self.digest_recomputations
        root = self.node_digest(self._tree.root)
        return root, self.digest_recomputations - before

    def node_digest(self, node: LeafNode | InternalNode) -> Digest:
        """Digest of ``node``, from cache when clean."""
        if node.digest is not None:
            if _obs.enabled:
                _CACHE_HITS.inc()
            return node.digest
        # Iterative post-order over the dirty region only: a node is
        # finished once every child is clean, so each dirty node is
        # hashed exactly once per batch.
        recomputed_before = self.digest_recomputations
        stack = [node]
        while stack:
            current = stack[-1]
            if current.digest is not None:
                stack.pop()
                continue
            if current.is_leaf:
                self.digest_recomputations += 1
                current.digest = hash_leaf_node(self.leaf_entry_digests(current))
                stack.pop()
                continue
            dirty_children = [c for c in current.children if c.digest is None]
            if dirty_children:
                stack.extend(dirty_children)
            else:
                self.digest_recomputations += 1
                current.digest = hash_internal_node(
                    list(current.keys), [c.digest for c in current.children])
                stack.pop()
        if _obs.enabled:
            _RECOMPUTATIONS.inc(self.digest_recomputations - recomputed_before)
        return node.digest
