"""The Merkle layer: digests over the B+-tree (paper Section 4.1).

"In a Merkle Tree, each node also stores a digest.  The digest stored
in a leaf node is the hash of the data stored at that node.  The digest
stored in an internal node is a hash of the concatenation of the
digests of the node's children."

We cache each node's digest on the node and invalidate lazily: every
mutating B+-tree operation clears the cached digest along the path it
touched, so recomputing the root digest after an update re-hashes only
O(log n) nodes.  ``digest_recomputations`` counts actual re-hashes,
which benchmark E2 uses to demonstrate the O(log n) claim.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest, hash_internal_node, hash_leaf, hash_leaf_node
from repro.mtree.bplus import DEFAULT_ORDER, BPlusTree, InternalNode, LeafNode


class MerkleBPlusTree:
    """A B+-tree whose every node carries a collision-intractable digest.

    The root digest ``M(D)`` commits to the full tree: all entries, all
    separator keys, and the tree shape.
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        self._tree = BPlusTree(order=order)
        self.digest_recomputations = 0

    # -- delegated plain-tree API -----------------------------------------

    @property
    def order(self) -> int:
        return self._tree.order

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, key: bytes) -> bool:
        return key in self._tree

    def get(self, key: bytes) -> bytes | None:
        return self._tree.get(key)

    def items(self):
        return self._tree.items()

    def range(self, low: bytes, high: bytes):
        return self._tree.range(low, high)

    def height(self) -> int:
        return self._tree.height()

    def check_invariants(self) -> None:
        self._tree.check_invariants()

    @property
    def tree(self) -> BPlusTree:
        """The underlying plain B+-tree (read-only use by the proof layer)."""
        return self._tree

    # -- mutation ----------------------------------------------------------

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; invalidates digests along the touched path."""
        return self._tree.insert(key, value)

    def delete(self, key: bytes) -> bool:
        """Delete ``key`` if present; invalidates digests along the path."""
        return self._tree.delete(key)

    # -- digests -------------------------------------------------------------

    def root_digest(self) -> Digest:
        """The root digest ``M(D)``, recomputing only dirty nodes."""
        return self.node_digest(self._tree.root)

    def node_digest(self, node: LeafNode | InternalNode) -> Digest:
        """Digest of ``node``, from cache when clean."""
        if node.digest is not None:
            return node.digest
        self.digest_recomputations += 1
        if node.is_leaf:
            entry_digests = [hash_leaf(k, v) for k, v in zip(node.keys, node.values)]
            node.digest = hash_leaf_node(entry_digests)
        else:
            child_digests = [self.node_digest(child) for child in node.children]
            node.digest = hash_internal_node(list(node.keys), child_digests)
        return node.digest
