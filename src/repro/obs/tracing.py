"""Lightweight span tracing with monotonic timing and nesting.

A *span* brackets one logical phase (``with trace.span("verify_vo"):``)
and records its wall time from ``time.perf_counter_ns`` (monotonic, so
system clock adjustments never produce negative durations).  Spans nest:
each thread keeps an open-span stack, so a span entered inside another
records its parent's name and depth, which the exporters use to render
phase breakdowns.

Finished spans land in two places:

* a bounded **ring buffer** of :class:`SpanRecord` (the most recent
  ``capacity`` spans, cheap enough to leave always-on while enabled);
* a per-name **aggregate** (count / total / max) that survives ring
  eviction, so long runs still report faithful per-phase totals.

Exception safety: ``__exit__`` always pops the stack and records the
span -- with ``status="error"`` and the exception type attached -- and
never swallows the exception.

While :mod:`repro.obs.runtime` is disabled, ``span()`` hands back a
shared no-op context manager: no allocation, no clock read.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs import runtime


@dataclass(slots=True, frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    parent: str | None
    status: str  # "ok" or "error"
    error: str | None = None

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


class _NoopSpan:
    """Returned while tracing is disabled; a shared do-nothing manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_tracer", "name", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = time.perf_counter_ns() - self._start
        stack = self._tracer._stack()
        # Pop *this* span even if an instrumented callee leaked spans.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_ns=self._start,
                duration_ns=duration,
                depth=self._depth,
                parent=self._parent,
                status="ok" if exc_type is None else "error",
                error=exc_type.__name__ if exc_type is not None else None,
            )
        )
        return False  # never swallow exceptions


class Tracer:
    """Span factory + ring buffer + per-name aggregates."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._records: deque[SpanRecord] = deque(maxlen=capacity)
        self._aggregate: dict[str, list] = {}  # name -> [count, total_ns, max_ns, errors]
        self._local = threading.local()
        self._lock = threading.Lock()

    def span(self, name: str) -> _Span | _NoopSpan:
        if not runtime.enabled:
            return _NOOP
        runtime.hook_fires += 1
        return _Span(self, name)

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
            cell = self._aggregate.get(record.name)
            if cell is None:
                cell = self._aggregate[record.name] = [0, 0, 0, 0]
            cell[0] += 1
            cell[1] += record.duration_ns
            if record.duration_ns > cell[2]:
                cell[2] = record.duration_ns
            if record.status != "ok":
                cell[3] += 1

    # -- read side ---------------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """The ring buffer's contents, oldest first."""
        with self._lock:
            return list(self._records)

    def aggregate(self) -> dict[str, dict]:
        """Per-span-name totals: count, total/mean/max ms, error count."""
        with self._lock:
            out = {}
            for name in sorted(self._aggregate):
                count, total_ns, max_ns, errors = self._aggregate[name]
                out[name] = {
                    "count": count,
                    "total_ms": round(total_ns / 1e6, 6),
                    "mean_ms": round(total_ns / count / 1e6, 6) if count else 0.0,
                    "max_ms": round(max_ns / 1e6, 6),
                    "errors": errors,
                }
            return out

    def depth(self) -> int:
        """Current nesting depth on the calling thread."""
        return len(self._stack())

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._aggregate.clear()
        self._local = threading.local()


#: the process-wide default tracer all built-in instrumentation uses.
TRACER = Tracer()
