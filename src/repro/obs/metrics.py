"""Counters, gauges, and histograms with labeled series.

The instruments mirror the shape every metrics system converges on
(Prometheus, OpenTelemetry) without any dependency: a *metric* is a
named instrument; a *series* is one (label-set -> value) cell of it.
Instrumented modules hold direct references to their instruments
(``_OPS = registry.counter("sim.ops_completed")``), so :meth:`Registry
.reset` clears series *in place* and never discards instrument objects.

Every mutating method is a no-op while :mod:`repro.obs.runtime` is
disabled; see there for the overhead accounting contract.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from repro.obs import runtime

#: default histogram buckets (upper bounds), tuned for millisecond
#: latencies but serviceable for small counts; byte-sized metrics pass
#: their own buckets.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: geometric byte-size buckets: 64 B .. 16 MiB.
BYTE_BUCKETS: tuple[float, ...] = tuple(64 * 4 ** i for i in range(10))


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _label_text(key: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{name}={value}" for name, value in key) or ""


class Metric:
    """Common naming/registration surface of all instruments."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def clear(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not runtime.enabled:
            return
        runtime.hook_fires += 1
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> dict[str, float]:
        return {_label_text(key): value for key, value in sorted(self._series.items())}

    def clear(self) -> None:
        self._series.clear()


class Gauge(Metric):
    """A point-in-time value (last write wins), optionally labeled."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[tuple, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not runtime.enabled:
            return
        runtime.hook_fires += 1
        self._series[_label_key(labels)] = value

    def value(self, **labels: str) -> float | None:
        return self._series.get(_label_key(labels))

    def series(self) -> dict[str, float]:
        return {_label_text(key): value for key, value in sorted(self._series.items())}

    def clear(self) -> None:
        self._series.clear()


class _HistogramSeries:
    """One label-set's accumulation: bucket counts + running stats."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +inf overflow
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(Metric):
    """A distribution over fixed buckets with exact sum/count/min/max.

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit +inf bucket catches overflow.  Quantiles are estimated by
    linear interpolation inside the bucket containing the target rank
    (the standard Prometheus ``histogram_quantile`` estimate).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        super().__init__(name, help)
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds
        self._series: dict[tuple, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        if not runtime.enabled:
            return
        runtime.hook_fires += 1
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            cell = self._series[key] = _HistogramSeries(len(self.buckets))
        cell.counts[bisect_left(self.buckets, value)] += 1
        cell.sum += value
        cell.count += 1
        if value < cell.min:
            cell.min = value
        if value > cell.max:
            cell.max = value

    # -- read side ---------------------------------------------------------

    def _cell(self, labels: dict[str, str]) -> _HistogramSeries | None:
        return self._series.get(_label_key(labels))

    def count(self, **labels: str) -> int:
        cell = self._cell(labels)
        return cell.count if cell else 0

    def total_count(self) -> int:
        return sum(cell.count for cell in self._series.values())

    def sum(self, **labels: str) -> float:
        cell = self._cell(labels)
        return cell.sum if cell else 0.0

    def mean(self, **labels: str) -> float | None:
        cell = self._cell(labels)
        if not cell or not cell.count:
            return None
        return cell.sum / cell.count

    def bucket_counts(self, **labels: str) -> dict[str, int]:
        """Cumulative ``le`` -> count map, Prometheus style."""
        cell = self._cell(labels)
        if cell is None:
            return {}
        out: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, cell.counts):
            running += count
            out[f"{bound:g}"] = running
        out["+inf"] = running + cell.counts[-1]
        return out

    def quantile(self, q: float, **labels: str) -> float | None:
        """Estimated q-quantile (0 <= q <= 1) from the bucket counts.

        Interpolated estimates are clamped to the observed [min, max]:
        with few samples a wide bucket would otherwise yield a quantile
        above the largest value ever seen.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cell = self._cell(labels)
        if cell is None or not cell.count:
            return None
        rank = q * cell.count
        running = 0.0
        lower = 0.0
        for bound, count in zip(self.buckets, cell.counts):
            if running + count >= rank:
                if count == 0:
                    return min(max(bound, cell.min), cell.max)
                fraction = (rank - running) / count
                estimate = lower + (bound - lower) * fraction
                return min(max(estimate, cell.min), cell.max)
            running += count
            lower = bound
        # rank falls in the +inf bucket: the best point estimate we can
        # give is the observed maximum.
        return cell.max

    def series_summary(self) -> dict[str, dict]:
        out = {}
        for key, cell in sorted(self._series.items()):
            out[_label_text(key)] = {
                "count": cell.count,
                "sum": round(cell.sum, 6),
                "mean": round(cell.sum / cell.count, 6) if cell.count else None,
                "min": round(cell.min, 6) if cell.count else None,
                "max": round(cell.max, 6) if cell.count else None,
                "p50": self._rounded_quantile(key, 0.5),
                "p99": self._rounded_quantile(key, 0.99),
            }
        return out

    def _rounded_quantile(self, key: tuple, q: float) -> float | None:
        value = self.quantile(q, **dict(key))
        return round(value, 6) if value is not None else None

    def clear(self) -> None:
        self._series.clear()


class Registry:
    """Name -> instrument directory; the single source of metric truth.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent
    per name), so modules can declare their instruments at import time
    and tests can look the same instruments up by name.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def reset(self) -> None:
        """Zero every series in place; instruments stay registered."""
        for metric in self._metrics.values():
            metric.clear()


#: the process-wide default registry all built-in instrumentation uses.
REGISTRY = Registry()
