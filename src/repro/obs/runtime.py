"""The observability on/off switch, shared by every instrument.

Instrumentation is compiled into the hot paths permanently; what keeps
it affordable is that every hook begins with a truthiness check of
``runtime.enabled`` (a plain module attribute -- one dict lookup) and
returns immediately when observability is off.  The perf suite measures
this disabled-hook cost and gates the estimated end-to-end overhead on
the E12 makespan benchmark at <3%.

``hook_fires`` counts how many instrument calls actually executed while
enabled.  The perf suite uses it to turn "ns per disabled hook" into an
exact overhead estimate: the number of guard executions in a disabled
run equals the number of hook fires in an enabled run of the same
workload (enabled-only work, such as wire-sizing a VO, happens *inside*
the guard and therefore only inflates the estimate conservatively).

Set the environment variable ``REPRO_OBS=1`` to enable collection from
process start (useful for the CLI and ad-hoc benchmark runs).
"""

from __future__ import annotations

import os

#: master switch -- hot code reads this attribute directly.
enabled: bool = os.environ.get("REPRO_OBS", "") not in ("", "0")

#: instrument calls executed while enabled (see module docstring).
hook_fires: int = 0


def enable() -> None:
    """Turn metric/trace collection on."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn collection off; already-collected data is kept."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    return enabled
