"""Runtime observability: metrics, span tracing, and exporters.

The paper states its desiderata in measurable quantities -- detection
delay, workload preservation, message overhead (Sections 2.2, 4.3) --
but reconstructs them after the fact from simulation reports.  This
package makes the same quantities (and the systems-level ones beneath
them: signature time, VO bytes, Merkle cache behaviour, wire traffic)
observable *live*, in-process, with zero dependencies:

* :mod:`repro.obs.metrics` -- counters / gauges / histograms with
  labeled series behind a process-wide :data:`registry`;
* :mod:`repro.obs.tracing` -- nested monotonic spans with a ring-buffer
  exporter and per-phase aggregates;
* :mod:`repro.obs.export` -- one snapshot dict, rendered as text
  (``repro obs-report``) or JSON.

Collection is **off by default** and every hook is no-op-cheap while
disabled (see :mod:`repro.obs.runtime`); flip it with :func:`enable`
or ``REPRO_OBS=1``.

Typical use::

    from repro import obs

    obs.enable()
    report = build_simulation("protocol2", workload, k=4).execute()
    print(obs.render_text())
    obs.disable()
"""

from repro.obs import runtime
from repro.obs.export import render_json, render_text, snapshot
from repro.obs.metrics import (
    BYTE_BUCKETS,
    DEFAULT_BUCKETS,
    REGISTRY as registry,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.obs.runtime import disable, enable, is_enabled
from repro.obs.tracing import TRACER as tracer, SpanRecord, Tracer


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter in the default registry."""
    return registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return registry.gauge(name, help)


def histogram(name: str, help: str = "",
              buckets: tuple[float, ...] | None = None) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return registry.histogram(name, help, buckets=buckets)


def span(name: str):
    """Open a span on the default tracer (``with obs.span("phase"):``)."""
    return tracer.span(name)


def reset() -> None:
    """Zero all metric series and clear the trace ring buffer."""
    registry.reset()
    tracer.reset()
    runtime.hook_fires = 0


__all__ = [
    "BYTE_BUCKETS",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SpanRecord",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "gauge",
    "histogram",
    "is_enabled",
    "registry",
    "render_json",
    "render_text",
    "reset",
    "runtime",
    "snapshot",
    "span",
    "tracer",
]
