"""Exporters: one snapshot dict, rendered as JSON or aligned text.

``snapshot`` freezes the registry + tracer into plain JSON-able data;
``render_text`` is what ``repro obs-report`` prints; ``render_json``
feeds benchmark post-processing so EXPERIMENTS can cite live numbers.
"""

from __future__ import annotations

import json

from repro.obs import runtime
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, Registry
from repro.obs.tracing import TRACER, Tracer


def snapshot(registry: Registry | None = None, tracer: Tracer | None = None) -> dict:
    """Freeze all collected metrics and span aggregates."""
    registry = registry if registry is not None else REGISTRY
    tracer = tracer if tracer is not None else TRACER
    counters: dict[str, dict] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, dict] = {}
    for metric in registry:
        if isinstance(metric, Counter):
            counters[metric.name] = {"total": metric.total(), "series": metric.series()}
        elif isinstance(metric, Gauge):
            gauges[metric.name] = {"series": metric.series()}
        elif isinstance(metric, Histogram):
            histograms[metric.name] = {"series": metric.series_summary()}
    return {
        "enabled": runtime.enabled,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": tracer.aggregate(),
    }


def render_json(snap: dict | None = None, indent: int = 2) -> str:
    return json.dumps(snap if snap is not None else snapshot(),
                      indent=indent, sort_keys=True)


def _fmt(value: float) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    return f"{int(value):,}"


def render_text(snap: dict | None = None) -> str:
    """Human-oriented report: counters, gauges, histograms, span phases."""
    snap = snap if snap is not None else snapshot()
    lines: list[str] = []

    def section(title: str) -> None:
        if lines:
            lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    if snap["counters"]:
        section("counters")
        width = max(len(name) for name in snap["counters"])
        for name, data in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {_fmt(data['total']):>14}")
            series = data["series"]
            if len(series) > 1 or (series and next(iter(series)) != ""):
                for label, value in series.items():
                    lines.append(f"    {label or '(no labels)':<{width}}{_fmt(value):>14}")

    if any(data["series"] for data in snap["gauges"].values()):
        section("gauges")
        width = max(len(name) for name in snap["gauges"])
        for name, data in snap["gauges"].items():
            for label, value in data["series"].items():
                suffix = f"{{{label}}}" if label else ""
                lines.append(f"  {name}{suffix:<{width}}  {_fmt(value):>14}")

    populated = {name: data for name, data in snap["histograms"].items()
                 if data["series"]}
    if populated:
        section("histograms")
        for name, data in populated.items():
            for label, cell in data["series"].items():
                suffix = f"{{{label}}}" if label else ""
                lines.append(
                    f"  {name}{suffix}: count={_fmt(cell['count'])} "
                    f"mean={_fmt(cell['mean'])} p50={_fmt(cell['p50'])} "
                    f"p99={_fmt(cell['p99'])} max={_fmt(cell['max'])}")

    if snap["spans"]:
        section("span timings (per phase)")
        width = max(len(name) for name in snap["spans"])
        lines.append(f"  {'phase':<{width}}  {'count':>9}  {'total ms':>12}"
                     f"  {'mean ms':>10}  {'max ms':>10}  errors")
        for name, agg in snap["spans"].items():
            lines.append(
                f"  {name:<{width}}  {agg['count']:>9,}  {agg['total_ms']:>12,.3f}"
                f"  {agg['mean_ms']:>10,.4f}  {agg['max_ms']:>10,.3f}  {agg['errors']}")

    if not lines:
        lines.append("(no observability data collected -- is obs enabled?)")
    return "\n".join(lines)
