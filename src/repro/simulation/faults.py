"""Failure injection -- the paper's future-work item (3).

"In closing ... we exclude all types of failures -- for example,
unreliable message delivery or crashes of the users or the server.
Failures are outside the scope of this paper, and we leave extensions
of our protocols to this case to future work."

This module supplies the two failure models the paper names, built so
the *existing* protocols keep working unchanged:

* :class:`LossyNetwork` -- message loss under an ARQ (retransmit-until-
  acknowledged) link layer.  Rather than simulating every duplicate and
  ack, we model the ARQ's *effect*: a lost message is retransmitted
  after ``retransmit_timeout`` rounds, so its effective delivery delay
  is ``delay + (attempts - 1) * retransmit_timeout`` with a geometric
  number of attempts, capped at ``max_attempts`` (so delivery time
  stays bounded and the b* assumption survives with a larger constant).
  Deduplication makes retransmission invisible to the receiver, which
  is why the payload-level protocols need no change.

* :func:`crash_schedule` / UserAgent ``offline_rounds`` -- crash-recovery
  users: while crashed, an agent processes nothing (messages queue);
  on recovery it resumes with its durable protocol state (registers,
  counters survive -- they are tiny, per Section 2.2.5, so persisting
  them is trivial).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.simulation.channels import Envelope, Network

_RETRANSMISSIONS = _registry.counter(
    "sim.retransmissions", "ARQ retransmissions forced by injected losses")
_DELAYED_ENVELOPES = _registry.counter(
    "sim.envelopes_delayed", "envelopes whose delivery a loss postponed")


@dataclass
class LossyNetwork(Network):
    """Bounded-delay delivery over a lossy link with ARQ semantics.

    All randomness flows through one explicit ``random.Random`` -- never
    the module-global ``random`` state -- so two networks constructed
    with the same ``seed`` (or sharing an ``rng``) inject byte-identical
    loss patterns and same-seed simulations replay exactly.  Pass
    ``rng`` to thread an externally owned generator through (e.g. one
    shared with a workload generator); it takes precedence over
    ``seed``.
    """

    loss_rate: float = 0.0
    retransmit_timeout: int = 4
    max_attempts: int = 8
    seed: int = 0
    rng: random.Random | None = None
    _rng: random.Random = field(default_factory=random.Random, repr=False)
    losses_injected: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if self.retransmit_timeout < 1 or self.max_attempts < 1:
            raise ValueError("retransmission parameters must be positive")
        self._rng = self.rng if self.rng is not None else random.Random(self.seed)

    def _attempts(self) -> int:
        attempts = 1
        while attempts < self.max_attempts and self._rng.random() < self.loss_rate:
            attempts += 1
            self.losses_injected += 1
            if _obs.enabled:
                _RETRANSMISSIONS.inc()
        return attempts

    def send(self, sender: str, recipient: str, payload: object, round_no: int) -> None:
        extra = (self._attempts() - 1) * self.retransmit_timeout
        if extra and _obs.enabled:
            _DELAYED_ENVELOPES.inc()
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_round=round_no,
            deliver_round=round_no + self.delay + extra,
        )
        self._pending.setdefault(envelope.deliver_round, []).append(envelope)
        self.messages_sent += 1
        if _obs.enabled:
            _registry.counter("sim.envelopes_sent").inc()

    def broadcast(self, sender: str, payload: object, round_no: int) -> None:
        self.broadcasts_sent += 1
        if _obs.enabled:
            _registry.counter("sim.broadcasts").inc()
            _registry.counter("sim.broadcast_envelopes").inc(
                len(self.user_ids) - (1 if sender in self.user_ids else 0))
        for user_id in self.user_ids:
            if user_id == sender:
                continue
            extra = (self._attempts() - 1) * self.retransmit_timeout
            if extra and _obs.enabled:
                _DELAYED_ENVELOPES.inc()
            envelope = Envelope(
                sender=sender,
                recipient=user_id,
                payload=payload,
                send_round=round_no,
                deliver_round=round_no + self.delay + extra,
            )
            self._pending.setdefault(envelope.deliver_round, []).append(envelope)

    def worst_case_delay(self) -> int:
        """The bound ARQ restores: delay + (max_attempts-1)*timeout."""
        return self.delay + (self.max_attempts - 1) * self.retransmit_timeout


def crash_schedule(crashes: list[tuple[int, int]]) -> set[int]:
    """Expand [(from_round, to_round), ...] into an offline-round set."""
    offline: set[int] = set()
    for start, end in crashes:
        if start > end:
            raise ValueError("crash interval must have start <= end")
        offline.update(range(start, end + 1))
    return offline
