"""Workload generators (paper Sections 2.2.2 and 3.1).

A workload is, per user, a schedule of intended operations: the round
at which the user would like to issue each query.  The paper cares
about several qualitatively different shapes:

* steady / bursty activity with offline gaps ("users sleep ... this
  often seems to be the case with actual CVS users in real life");
* *partitionable* workloads (Section 3.1) -- two groups that never
  interleave after some round, with a causal dependency across the
  groups; these enable the partition attack of Figure 1;
* epoch-friendly workloads for Protocol III -- every user performs at
  least two operations every ``t`` rounds.

All generators are deterministic given their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mtree.database import Query, RangeQuery, ReadQuery, WriteQuery


@dataclass(frozen=True)
class Intent:
    """One planned operation: issue ``query`` no earlier than ``round``."""

    round: int
    query: Query


@dataclass
class Workload:
    """Per-user operation schedules plus scenario metadata."""

    name: str
    schedules: dict[str, list[Intent]]
    metadata: dict = field(default_factory=dict)

    @property
    def user_ids(self) -> list[str]:
        return sorted(self.schedules)

    def total_operations(self) -> int:
        return sum(len(intents) for intents in self.schedules.values())

    def horizon(self) -> int:
        """The last scheduled round across all users."""
        last = 0
        for intents in self.schedules.values():
            if intents:
                last = max(last, intents[-1].round)
        return last


def _file_key(index: int) -> bytes:
    return f"src/file{index:04d}.c".encode("utf-8")


def _content(user: str, step: int) -> bytes:
    return f"// {user} edit {step}\nint value = {step};\n".encode("utf-8")


def _random_query(
    rng: random.Random,
    user: str,
    step: int,
    keyspace: int,
    write_ratio: float,
    scan_ratio: float = 0.0,
) -> Query:
    roll = rng.random()
    if roll < write_ratio:
        return WriteQuery(key=_file_key(rng.randrange(keyspace)),
                          value=_content(user, step))
    if roll < write_ratio + scan_ratio:
        # a directory checkout: a verified range scan
        lo = rng.randrange(keyspace)
        hi = min(keyspace - 1, lo + rng.randrange(1, max(2, keyspace // 4)))
        return RangeQuery(low=_file_key(lo), high=_file_key(hi))
    return ReadQuery(key=_file_key(rng.randrange(keyspace)))


def seed_queries(keyspace: int) -> list[Query]:
    """Writes that populate every key once, used to pre-load the server."""
    return [WriteQuery(key=_file_key(i), value=_content("seed", 0)) for i in range(keyspace)]


def steady_workload(
    n_users: int,
    ops_per_user: int,
    spacing: int = 4,
    keyspace: int = 32,
    write_ratio: float = 0.5,
    scan_ratio: float = 0.0,
    seed: int = 0,
) -> Workload:
    """Every user issues an op every ~``spacing`` rounds, jittered.

    ``scan_ratio`` mixes in verified range reads (directory checkouts).
    """
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    for u in range(n_users):
        user = f"user{u}"
        round_no = 1 + rng.randrange(spacing)
        intents = []
        for step in range(ops_per_user):
            intents.append(Intent(round=round_no,
                                  query=_random_query(rng, user, step, keyspace,
                                                      write_ratio, scan_ratio)))
            round_no += 1 + rng.randrange(spacing)
        schedules[user] = intents
    return Workload(name="steady", schedules=schedules,
                    metadata={"keyspace": keyspace, "seed": seed})


def bursty_workload(
    n_users: int,
    sessions: int = 3,
    ops_per_session: int = 5,
    session_gap: int = 60,
    keyspace: int = 32,
    write_ratio: float = 0.6,
    seed: int = 0,
) -> Workload:
    """Work-session behaviour: bursts of edits separated by offline gaps."""
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    for u in range(n_users):
        user = f"user{u}"
        intents = []
        round_no = 1 + rng.randrange(10)
        step = 0
        for _session in range(sessions):
            for _ in range(ops_per_session):
                intents.append(Intent(round=round_no, query=_random_query(rng, user, step, keyspace, write_ratio)))
                round_no += 1 + rng.randrange(3)
                step += 1
            round_no += session_gap + rng.randrange(session_gap)
        schedules[user] = intents
    return Workload(name="bursty", schedules=schedules,
                    metadata={"keyspace": keyspace, "seed": seed})


def sleepy_workload(
    n_users: int,
    awake_ops: int = 4,
    sleeper_fraction: float = 0.5,
    keyspace: int = 32,
    seed: int = 0,
) -> Workload:
    """Some users go offline indefinitely after a few early operations.

    The paper requires detection to work even then (Section 2.2.2).
    """
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    n_sleepers = int(n_users * sleeper_fraction)
    for u in range(n_users):
        user = f"user{u}"
        is_sleeper = u < n_sleepers
        ops = awake_ops if is_sleeper else awake_ops * 6
        round_no = 1 + rng.randrange(4)
        intents = []
        for step in range(ops):
            intents.append(Intent(round=round_no, query=_random_query(rng, user, step, keyspace, 0.7)))
            round_no += 2 + rng.randrange(4)
        schedules[user] = intents
    return Workload(name="sleepy", schedules=schedules,
                    metadata={"sleepers": [f"user{u}" for u in range(n_sleepers)], "seed": seed})


def partitionable_workload(
    group_a_size: int = 1,
    group_b_size: int = 2,
    k: int = 8,
    shared_key: bytes = b"src/Common.h",
    fork_round: int = 20,
    spacing: int = 4,
    keyspace: int = 16,
    seed: int = 0,
) -> Workload:
    """The Figure 1 scenario: US programmer (group A) commits a shared
    header and goes offline; the China team (group B) reads it, then
    performs k+1 causally dependent operations while A is away.

    Metadata records the groups and the causal transaction rounds so
    benches can line detection up against the attack timeline.
    """
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    group_a = [f"us{u}" for u in range(group_a_size)]
    group_b = [f"cn{u}" for u in range(group_b_size)]

    # Group A: a little warm-up, then the t1 commit to the shared key,
    # then offline past the horizon.
    t1_round = fork_round
    for u, user in enumerate(group_a):
        intents = []
        round_no = 1 + rng.randrange(spacing)
        step = 0
        while round_no < fork_round - 2:
            intents.append(Intent(round=round_no, query=_random_query(rng, user, step, keyspace, 0.5)))
            round_no += 1 + rng.randrange(spacing)
            step += 1
        if u == 0:
            intents.append(Intent(round=t1_round, query=WriteQuery(key=shared_key, value=_content(user, 999))))
        schedules[user] = intents

    # Group B: quiet before the fork, then t2 (a read of the shared key
    # -- the causal dependency) followed by k+1 further operations by
    # one user.
    t2_round = t1_round + 4
    for u, user in enumerate(group_b):
        intents = []
        round_no = 1 + rng.randrange(spacing)
        step = 0
        while round_no < fork_round - 2:
            intents.append(Intent(round=round_no, query=_random_query(rng, user, step, keyspace, 0.5)))
            round_no += 1 + rng.randrange(spacing)
            step += 1
        if u == 0:
            intents.append(Intent(round=t2_round, query=ReadQuery(key=shared_key)))
            round_no = t2_round + 2
            for extra in range(k + 1):
                intents.append(Intent(round=round_no, query=_random_query(rng, user, 1000 + extra, keyspace, 0.8)))
                round_no += 1 + rng.randrange(2)
        schedules[user] = intents

    return Workload(
        name="partitionable",
        schedules=schedules,
        metadata={
            "group_a": group_a,
            "group_b": group_b,
            "k": k,
            "fork_round": fork_round,
            "t1_round": t1_round,
            "t2_round": t2_round,
            "shared_key": shared_key,
            "seed": seed,
        },
    )


def epoch_workload(
    n_users: int,
    epoch_length: int,
    epochs: int,
    ops_per_epoch: int = 2,
    keyspace: int = 32,
    write_ratio: float = 0.6,
    seed: int = 0,
) -> Workload:
    """Protocol III's permitted workload: every user performs at least
    ``ops_per_epoch`` (>= 2) operations in every epoch of ``epoch_length``
    rounds."""
    if ops_per_epoch < 2:
        raise ValueError("Protocol III requires at least two operations per epoch")
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    for u in range(n_users):
        user = f"user{u}"
        intents = []
        step = 0
        for epoch in range(epochs):
            base = epoch * epoch_length
            # Pick distinct offsets, early enough that the transactions
            # complete inside the epoch despite messaging latency.
            usable = max(ops_per_epoch, epoch_length - 6)
            offsets = sorted(rng.sample(range(1, usable + 1), ops_per_epoch))
            for offset in offsets:
                intents.append(Intent(round=base + offset, query=_random_query(rng, user, step, keyspace, write_ratio)))
                step += 1
        schedules[user] = intents
    return Workload(
        name="epoch",
        schedules=schedules,
        metadata={"epoch_length": epoch_length, "epochs": epochs, "seed": seed},
    )


def timezone_workload(
    teams: dict[str, int],
    day_length: int = 100,
    days: int = 3,
    ops_per_day: int = 5,
    keyspace: int = 24,
    shared_fraction: float = 0.2,
    write_ratio: float = 0.6,
    seed: int = 0,
) -> Workload:
    """The paper's US/China motivation as a trace model: geographically
    split teams working in *offset day/night cycles*, mostly on their
    own files plus a shared slice (the ``Common.h`` coupling).

    ``teams`` maps a team name to its user count; team i's working
    window is offset by ``i * day_length / len(teams)`` rounds.  Shared
    keys are the first ``shared_fraction`` of the keyspace; the rest is
    partitioned per team.
    """
    if not teams:
        raise ValueError("need at least one team")
    rng = random.Random(seed)
    team_names = sorted(teams)
    shared_keys = max(1, int(keyspace * shared_fraction))
    per_team = (keyspace - shared_keys) // max(1, len(team_names))
    schedules: dict[str, list[Intent]] = {}

    for team_index, team in enumerate(team_names):
        offset = team_index * day_length // len(team_names)
        lo = shared_keys + team_index * per_team
        hi = lo + max(1, per_team)
        for member in range(teams[team]):
            user = f"{team}{member}"
            intents: list[Intent] = []
            step = 0
            for day in range(days):
                base = day * day_length + offset
                # work only during the first half of the (offset) day
                window = day_length // 2 - 4
                offsets = sorted(rng.sample(range(1, max(ops_per_day + 1, window)),
                                            ops_per_day))
                for slot in offsets:
                    if rng.random() < shared_fraction:
                        key = _file_key(rng.randrange(shared_keys))
                    else:
                        key = _file_key(rng.randrange(lo, hi))
                    if rng.random() < write_ratio:
                        query = WriteQuery(key=key, value=_content(user, step))
                    else:
                        query = ReadQuery(key=key)
                    intents.append(Intent(round=base + slot, query=query))
                    step += 1
            schedules[user] = intents

    return Workload(
        name="timezone",
        schedules=schedules,
        metadata={"teams": dict(teams), "day_length": day_length,
                  "shared_keys": shared_keys, "seed": seed},
    )


def back_to_back_workload(
    n_users: int,
    ops_per_user: int = 4,
    keyspace: int = 8,
    seed: int = 0,
) -> Workload:
    """One user fires operations back-to-back while others idle --
    the workload-preservation stress case of Section 2.2.3 (the
    token-passing strawman forces the busy user to wait a full cycle
    of null records between its operations)."""
    rng = random.Random(seed)
    schedules: dict[str, list[Intent]] = {}
    busy = "user0"
    intents = []
    for step in range(ops_per_user):
        intents.append(Intent(round=1, query=_random_query(rng, busy, step, keyspace, 1.0)))
    schedules[busy] = intents
    for u in range(1, n_users):
        schedules[f"user{u}"] = []
    return Workload(name="back-to-back", schedules=schedules,
                    metadata={"busy_user": busy, "seed": seed})
