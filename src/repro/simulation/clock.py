"""Clocks and partial synchrony (paper Section 2.1).

"An agent's local clock is said to 'tick' every time its local state
changes ... We assume p-partial synchrony where every user's local
state changes at least once every p rounds."

:class:`LocalClock` models a user's drifting clock: on each global
round it ticks with some probability, but never goes longer than ``p``
rounds without ticking.  From its tick count a user can bound the true
global time -- ``local <= global <= p * local`` -- which is what the
Protocol III client uses to sanity-check the server's epoch
announcements without any access to the global clock.
"""

from __future__ import annotations

import random


class LocalClock:
    """A p-partially-synchronous local clock."""

    def __init__(self, p: int = 1, tick_probability: float = 1.0, seed: int = 0) -> None:
        if p < 1:
            raise ValueError("p must be at least 1")
        if not 0.0 <= tick_probability <= 1.0:
            raise ValueError("tick probability must be in [0, 1]")
        self.p = p
        self._tick_probability = tick_probability
        self._rng = random.Random(seed)
        self._local_time = 0
        self._rounds_since_tick = 0

    @property
    def time(self) -> int:
        """Ticks observed so far (the user's only notion of time)."""
        return self._local_time

    def advance(self) -> bool:
        """One global round passes; returns whether the clock ticked."""
        self._rounds_since_tick += 1
        should_tick = (
            self._rounds_since_tick >= self.p
            or self._rng.random() < self._tick_probability
        )
        if should_tick:
            self._local_time += 1
            self._rounds_since_tick = 0
        return should_tick

    def global_time_bounds(self) -> tuple[int, int]:
        """The interval the true global round must lie in.

        The clock ticks at most once per round (lower bound) and at
        least once every p rounds (upper bound).
        """
        return (self._local_time, self._local_time * self.p + self.p - 1)

    def plausible_epochs(self, epoch_length: int) -> tuple[int, int]:
        """Range of epoch numbers consistent with this clock."""
        lo, hi = self.global_time_bounds()
        return (lo // epoch_length, hi // epoch_length)
