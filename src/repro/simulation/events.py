"""Runs, points, and deviation (paper Section 2.1, Definition 2.1).

A *run* is the paper's function from time to global states; what
Definition 2.1 actually compares between runs is the set and order of
*query and response actions*.  We therefore record a run as the
ordered sequence of those actions, each stamped with its round, and
implement deviation as the paper defines it:

    A prefix of a run r deviates from a run r' if there is some prefix
    of r' such that (1) the sets of query/response actions differ, or
    (2) the order in which they occur differs.

Two runs with the same actions in the same order but at different
rounds do **not** deviate -- only timing moved, which is what bounded
workload preservation (Section 2.2.3) measures instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mtree.database import Query


@dataclass(frozen=True)
class Action:
    """One query or response action, identified by its transaction.

    ``txn_id`` is globally unique per transaction, so the query action
    and its matching response action share it.  ``answer_digest`` lets
    deviation comparison notice a response whose *content* differs
    (same transaction, different answer), which Definition 2.1 captures
    because such response actions are not "identical".
    """

    kind: str  # "query" | "response"
    user_id: str
    txn_id: int
    description: str
    answer_digest: str = ""


@dataclass(frozen=True)
class TimedAction:
    action: Action
    round: int


@dataclass
class Run:
    """An ordered record of the query/response actions of one execution."""

    actions: list[TimedAction] = field(default_factory=list)

    def record(self, action: Action, round_no: int) -> None:
        self.actions.append(TimedAction(action=action, round=round_no))

    def action_sequence(self) -> list[Action]:
        """The untimed action sequence Definition 2.1 compares."""
        return [timed.action for timed in self.actions]

    def prefix(self, length: int) -> "Run":
        return Run(actions=list(self.actions[:length]))

    def __len__(self) -> int:
        return len(self.actions)


def describe_query(query: Query) -> str:
    """Stable one-line description of a query for action identity."""
    name = type(query).__name__
    parts = [name]
    for attr in ("key", "low", "high"):
        if hasattr(query, attr):
            parts.append(getattr(query, attr).decode("utf-8", "replace"))
    if hasattr(query, "value"):
        parts.append(f"{len(query.value)}B")
    return ":".join(parts)


def prefix_deviates(run: Run, reference: Run) -> bool:
    """Definition 2.1: does some prefix of ``run`` deviate from ``reference``?

    ``run`` deviates from ``reference`` iff no prefix of ``reference``
    has exactly the same action sequence as some prefix of ``run`` --
    operationally, iff ``run``'s action sequence is not a prefix of
    ``reference``'s (sets and order must both agree).
    """
    ours = run.action_sequence()
    theirs = reference.action_sequence()
    if len(ours) > len(theirs):
        return True
    return ours != theirs[: len(ours)]


def deviates_from_all(run: Run, trusted_runs: list[Run]) -> bool:
    """Whether ``run`` deviates from every run in ``trusted_runs``.

    This is the paper's definition of the *server* deviating: the
    observed untrusted-system run matches no possible trusted run.
    """
    return all(prefix_deviates(run, reference) for reference in trusted_runs)
