"""User and server agents: the active parties of the multi-agent system.

A :class:`UserAgent` owns a protocol client and a workload schedule; a
:class:`ServerAgent` owns the server half of the protocol, its state,
and (optionally) an attack strategy.  Agents communicate exclusively
through the :class:`~repro.simulation.channels.Network` -- the runner
never lets them touch each other's state, mirroring the paper's
"no external communication except the broadcast channel" discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.base import (
    DeviationDetected,
    Followup,
    ProtocolClient,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.simulation.channels import SERVER_ID, Network
from repro.simulation.events import Action, Run, describe_query
from repro.simulation.workload import Intent

_OPS_ISSUED = _registry.counter(
    "sim.ops_issued", "workload operations issued, by user")
_OPS_COMPLETED = _registry.counter(
    "sim.ops_completed", "workload operations verified complete, by user")
_OP_GAPS = _registry.histogram(
    "sim.op_gap_rounds", "rounds between a user's consecutive completions",
    buckets=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256))
_ALARMS = _registry.counter("sim.alarms", "users that raised a deviation alarm")
_SERVER_OPS = _registry.counter(
    "sim.server_ops", "operations the server agent served")


@dataclass
class Alarm:
    """A user's detection record: when and why it cried foul."""

    round: int
    reason: str


@dataclass
class _PendingTransaction:
    txn_id: int
    query: object
    issued_round: int


#: identity-keyed fingerprint memo.  A broadcast delivers the *same*
#: payload object to every other user, so one repr+hash serves n-1
#: deliveries.  Entries hold a strong reference to the payload, which
#: pins its ``id`` for the lifetime of the entry; payloads are never
#: mutated after sending (receivers only read), so the memo stays valid.
_FINGERPRINT_CACHE: dict[int, tuple[object, str]] = {}
_FINGERPRINT_CACHE_MAX = 4096


def _fingerprint(payload: object) -> str:
    """A stable content fingerprint of a message payload.

    ``repr`` of our message dataclasses is deterministic and covers
    digests, counters, signatures, and answers -- everything a client
    could condition its behaviour on.
    """
    import hashlib

    cached = _FINGERPRINT_CACHE.get(id(payload))
    if cached is not None and cached[0] is payload:
        return cached[1]
    fingerprint = hashlib.sha256(
        repr(payload).encode("utf-8", "replace")).hexdigest()[:16]
    if len(_FINGERPRINT_CACHE) >= _FINGERPRINT_CACHE_MAX:
        _FINGERPRINT_CACHE.clear()
    _FINGERPRINT_CACHE[id(payload)] = (payload, fingerprint)
    return fingerprint


class UserAgent:
    """Drives one user's workload through its protocol client.

    ``transaction_timeout`` implements the b*-bounded transaction time
    assumption: a response outstanding for longer than the bound is
    itself proof of deviation (the trusted server always answers within
    b* rounds), so the agent raises an alarm.
    """

    def __init__(
        self,
        user_id: str,
        client: ProtocolClient,
        intents: list[Intent],
        transaction_timeout: int = 30,
        offline_rounds: set[int] | None = None,
    ) -> None:
        self.user_id = user_id
        self.client = client
        self.transaction_timeout = transaction_timeout
        # Crash-recovery modelling: while offline the agent processes
        # nothing (its inbox queues up); protocol state is durable.
        self.offline_rounds = offline_rounds or set()
        self.intents = list(intents)
        self.intent_index = 0
        self.inbox: list[object] = []
        self.pending: _PendingTransaction | None = None
        self.alarm: Alarm | None = None
        self.completion_rounds: list[int] = []
        self.issue_rounds: list[int] = []
        # Fingerprints of every message this user received, in order --
        # the user's *view*.  Two runs with identical views are
        # indistinguishable to any deterministic client (the engine of
        # the Theorem 3.1 demonstration).
        self.view_transcript: list[tuple[int, str, str]] = []
        # Wired by the runner each round:
        self._network: Network | None = None
        self._run: Run | None = None
        self._round = 0
        self._txn_counter = None  # shared mutable [int]

    # -- ClientContext interface ------------------------------------------

    @property
    def round(self) -> int:
        return self._round

    def send_to_server(self, message: Followup | Request) -> None:
        self._network.send(self.user_id, SERVER_ID, message, self._round)

    def broadcast(self, payload: dict) -> None:
        self._network.broadcast(self.user_id, payload, self._round)

    def send_to_user(self, user_id: str, payload: dict) -> None:
        """Point-to-point message on the external (user) channel."""
        self._network.send(self.user_id, user_id, payload, self._round)

    # -- lifecycle -----------------------------------------------------------

    def done(self) -> bool:
        """No intents left, nothing in flight, not mid-protocol-chatter."""
        return (
            self.alarm is not None
            or (self.intent_index >= len(self.intents) and self.pending is None)
        )

    def step(self, round_no: int, network: Network, run: Run, txn_counter: list) -> None:
        """One round: absorb deliveries, then maybe issue the next intent."""
        if round_no in self.offline_rounds:
            return  # crashed: messages keep queueing in the inbox
        self._network = network
        self._run = run
        self._round = round_no
        self._txn_counter = txn_counter

        inbox, self.inbox = self.inbox, []
        for envelope in inbox:
            if self.alarm is not None:
                break
            self.view_transcript.append(
                (round_no, envelope.sender, _fingerprint(envelope.payload))
            )
            try:
                if envelope.sender == SERVER_ID:
                    self._handle_server_message(envelope.payload)
                else:
                    self.client.handle_broadcast(envelope.sender, envelope.payload, self)
            except DeviationDetected as exc:
                self._raise_alarm(exc)

        if self.alarm is not None:
            return
        if (
            self.pending is not None
            and round_no - self.pending.issued_round > self.transaction_timeout
        ):
            self._raise_alarm(
                DeviationDetected(
                    self.user_id,
                    "transaction exceeded the bounded transaction time b*: "
                    "the server withheld a response",
                )
            )
            return
        try:
            self.client.on_round(self)
        except DeviationDetected as exc:
            self._raise_alarm(exc)
            return

        self._maybe_issue(round_no, run)

    def _handle_server_message(self, payload: object) -> None:
        if not isinstance(payload, Response):
            raise TypeError(f"unexpected server payload {type(payload).__name__}")
        pending, self.pending = self.pending, None
        if pending is None:
            raise DeviationDetected(self.user_id, "unsolicited response from server")
        answer = self.client.handle_response(pending.query, payload, self)
        if pending.query is not None:
            if _obs.enabled:
                _OPS_COMPLETED.inc(user=self.user_id)
                if self.completion_rounds:
                    _OP_GAPS.observe(self._round - self.completion_rounds[-1],
                                     user=self.user_id)
            self.completion_rounds.append(self._round)
            self._run.record(
                Action(
                    kind="response",
                    user_id=self.user_id,
                    txn_id=pending.txn_id,
                    description=describe_query(pending.query),
                    answer_digest=repr(answer)[:64],
                ),
                self._round,
            )
            if self.client.wants_sync():
                self.client.announce_sync(self)

    def _maybe_issue(self, round_no: int, run: Run) -> None:
        if self.pending is not None or self.intent_index >= len(self.intents):
            return
        intent = self.intents[self.intent_index]
        if intent.round > round_no:
            return
        if not self.client.may_start_transaction(self):
            return
        self.intent_index += 1
        self._txn_counter[0] += 1
        txn_id = self._txn_counter[0]
        self.pending = _PendingTransaction(txn_id=txn_id, query=intent.query, issued_round=round_no)
        self.issue_rounds.append(round_no)
        if _obs.enabled:
            _OPS_ISSUED.inc(user=self.user_id)
        request = self.client.make_request(intent.query)
        self.send_to_server(request)
        self.client.on_issue(self)
        run.record(
            Action(
                kind="query",
                user_id=self.user_id,
                txn_id=txn_id,
                description=describe_query(intent.query),
            ),
            round_no,
        )

    def issue_internal(self, request: Request) -> None:
        """Send a protocol-internal (verification) request -- e.g. the
        Protocol III auditor fetching deposited snapshots.  Not recorded
        as a workload transaction."""
        if self.pending is not None:
            return
        self.pending = _PendingTransaction(txn_id=-1, query=request.query, issued_round=self._round)
        self.send_to_server(request)

    def has_pending(self) -> bool:
        return self.pending is not None

    def _raise_alarm(self, exc: DeviationDetected) -> None:
        if self.alarm is None:
            self.alarm = Alarm(round=self._round, reason=exc.reason)
            if _obs.enabled:
                _ALARMS.inc(user=self.user_id)
        self.pending = None


class ServerAgent:
    """The CVS server: executes requests in arrival order, possibly under
    the influence of an attack strategy.

    For ground truth, the agent also runs an *oracle*: an honest copy
    of the database executing the same workload queries in the same
    arrival order.  The first served response that disagrees with the
    oracle -- in answer content, or (for protocols whose responses
    commit to the database state) in post-operation root digest --
    marks the onset of deviation per Definition 2.1, since the actual
    arrival order is itself a trusted-system run.
    """

    def __init__(
        self,
        protocol: ServerProtocol,
        state: ServerState,
        attack=None,
        service_rate: int | None = None,
    ) -> None:
        self.protocol = protocol
        self.states: dict[str, ServerState] = {"main": state}
        self.attack = attack
        self.service_rate = service_rate
        self.inbox: list[object] = []
        self.request_queue: list[tuple[str, Request]] = []
        self.operations_served = 0
        self.observed_deviation_round: int | None = None
        # Global operation ordinal (arrival order) at deviation onset --
        # ground truth for fault-localisation experiments.
        self.observed_deviation_ctr: int | None = None
        protocol.initialize(state)
        # The oracle only tracks the database, never protocol metadata.
        self._oracle = state.clone()

    def busy(self) -> bool:
        return bool(self.request_queue) or bool(self.inbox)

    @property
    def first_deviation_round(self) -> int | None:
        """Earliest known deviation onset: oracle-observed or
        attack-self-reported, whichever came first."""
        candidates = [self.observed_deviation_round]
        if self.attack is not None:
            candidates.append(self.attack.first_deviation_round)
        rounds = [r for r in candidates if r is not None]
        return min(rounds) if rounds else None

    def step(self, round_no: int, network: Network) -> None:
        if self.attack is not None:
            self.attack.on_round(self, round_no)
        inbox, self.inbox = self.inbox, []
        for envelope in inbox:
            payload = envelope.payload
            if isinstance(payload, Followup):
                state = self._state_for(envelope.sender, round_no)
                self.protocol.handle_followup(envelope.sender, payload, state, round_no)
            elif isinstance(payload, Request):
                self.request_queue.append((envelope.sender, payload))
            else:
                raise TypeError(f"unexpected payload at server: {type(payload).__name__}")

        served = 0
        while self.request_queue:
            if self.service_rate is not None and served >= self.service_rate:
                break
            user_id, request = self.request_queue[0]
            state = self._state_for(user_id, round_no)
            if self.protocol.blocked(state):
                break
            self.request_queue.pop(0)
            response = self.protocol.handle_request(user_id, request, state, round_no)
            if self.attack is not None:
                response = self.attack.mutate_response(user_id, request, response, state, round_no)
            self.operations_served += 1
            served += 1
            if _obs.enabled:
                _SERVER_OPS.inc()
            self._check_against_oracle(request, response, state, round_no)
            network.send(SERVER_ID, user_id, response, round_no)

    def _state_for(self, user_id: str, round_no: int) -> ServerState:
        if self.attack is None:
            return self.states["main"]
        return self.attack.select_state(user_id, round_no, self)

    def _check_against_oracle(self, request: Request, response: Response, state: ServerState, round_no: int) -> None:
        if request.query is None:
            return
        oracle_result = self._oracle.database.execute(request.query)
        oracle_ctr_before = self._oracle.ctr
        self._oracle.ctr += 1
        if self.observed_deviation_round is not None:
            return

        def flag() -> None:
            self.observed_deviation_round = round_no
            self.observed_deviation_ctr = oracle_ctr_before

        if oracle_result.answer != response.result.answer:
            flag()
            return
        if self.protocol.responses_commit_state:
            if state.database.root_digest() != self._oracle.database.root_digest():
                flag()
                return
            # A committed operation counter that disagrees with the
            # arrival-order count is itself a differing response action
            # (a forked branch betrays itself through ctr before its
            # data diverges).
            served_ctr = response.extras.get("ctr")
            if isinstance(served_ctr, int) and served_ctr != oracle_ctr_before:
                flag()
