"""The round-based simulator (paper Section 2.1).

Rounds advance a global clock; in each round the network delivers due
messages, every user agent steps, and then the server steps.  With the
default one-round delivery delay this yields b* = 3 bounded transaction
time on an unloaded honest server (query round m, served m+1, response
handled m+2).

The runner is deliberately dumb: all protocol intelligence lives in the
clients/server protocol objects, and all malice lives in the attack
strategy.  The runner just moves envelopes, records the run, and
produces a :class:`SimulationReport` with the detection metrics every
benchmark consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.obs.tracing import TRACER as _tracer
from repro.simulation.agents import Alarm, ServerAgent, UserAgent
from repro.simulation.channels import Network
from repro.simulation.events import Run

_ROUNDS = _registry.counter("sim.rounds", "simulation rounds executed")
_DELIVERED = _registry.counter(
    "sim.envelopes_delivered", "envelopes handed to recipient inboxes")
_DETECTION_DELAY = _registry.gauge(
    "sim.detection_delay_rounds", "rounds between deviation onset and first alarm")
_FIRST_ALARM = _registry.gauge(
    "sim.first_alarm_round", "round of the first user alarm")
_FIRST_DEVIATION = _registry.gauge(
    "sim.first_deviation_round", "round of the first server deviation")


@dataclass
class SimulationReport:
    """Everything a benchmark needs to know about one execution."""

    rounds_executed: int
    run: Run
    alarms: dict[str, Alarm]
    first_deviation_round: int | None
    operations_completed: dict[str, int]
    completion_rounds: dict[str, list[int]]
    issue_rounds: dict[str, list[int]]
    messages_sent: int
    broadcasts_sent: int
    server_operations: int
    metadata: dict = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        return bool(self.alarms)

    @property
    def detection_round(self) -> int | None:
        """Round at which the *first* user detected deviation (the paper
        only requires that some user knows)."""
        if not self.alarms:
            return None
        return min(alarm.round for alarm in self.alarms.values())

    @property
    def false_alarm(self) -> bool:
        """An alarm with no actual deviation -- must never happen."""
        return self.detected and self.first_deviation_round is None

    @property
    def missed_detection(self) -> bool:
        return self.first_deviation_round is not None and not self.detected

    def detection_delay_rounds(self) -> int | None:
        """Rounds between deviation onset and first detection."""
        if self.first_deviation_round is None or self.detection_round is None:
            return None
        return self.detection_round - self.first_deviation_round

    def max_ops_after_deviation(self) -> int | None:
        """The k-bounded-deviation-detection metric: the maximum, over
        users, of transactions *initiated after* the deviation onset and
        completed before the first detection."""
        if self.first_deviation_round is None:
            return None
        cutoff = self.detection_round
        worst = 0
        for user_id, issued in self.issue_rounds.items():
            completed = self.completion_rounds[user_id]
            count = 0
            for issue_round, completion_round in zip(issued, completed):
                if issue_round <= self.first_deviation_round:
                    continue
                if cutoff is not None and completion_round > cutoff:
                    continue
                count += 1
            worst = max(worst, count)
        return worst


class Simulation:
    """Wires agents to a network and executes rounds."""

    def __init__(
        self,
        server: ServerAgent,
        users: list[UserAgent],
        network: Network | None = None,
    ) -> None:
        self.server = server
        self.users = users
        self._users_by_id = {user.user_id: user for user in users}
        self.network = network or Network(user_ids=[u.user_id for u in users])
        self.run = Run()
        self._txn_counter = [0]

    def execute(
        self,
        max_rounds: int = 10_000,
        stop_after_detection: int | None = 8,
        quiesce_rounds: int = 12,
    ) -> SimulationReport:
        """Run until the workload drains, detection (plus a grace period
        for sync chatter to settle), or ``max_rounds``."""
        detection_round: int | None = None
        idle_rounds = 0
        round_no = 0
        for round_no in range(1, max_rounds + 1):
            with _tracer.span("sim.round"):
                due = self.network.deliveries(round_no)
                if _obs.enabled:
                    _ROUNDS.inc()
                    _DELIVERED.inc(len(due))
                for envelope in due:
                    if envelope.recipient == "server":
                        self.server.inbox.append(envelope)
                    else:
                        self._user(envelope.recipient).inbox.append(envelope)

                for user in self.users:
                    user.step(round_no, self.network, self.run, self._txn_counter)
                self.server.step(round_no, self.network)

            if detection_round is None and any(u.alarm is not None for u in self.users):
                detection_round = round_no
            if detection_round is not None and stop_after_detection is not None:
                if round_no - detection_round >= stop_after_detection:
                    break

            if self._drained():
                idle_rounds += 1
                if idle_rounds >= quiesce_rounds:
                    break
            else:
                idle_rounds = 0

        return self._report(round_no)

    def _drained(self) -> bool:
        if self.network.in_flight() or self.server.busy():
            return False
        return all(user.done() and not user.inbox for user in self.users)

    def _user(self, user_id: str) -> UserAgent:
        try:
            return self._users_by_id[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id!r}") from None

    def _report(self, rounds_executed: int) -> SimulationReport:
        report = self._build_report(rounds_executed)
        if _obs.enabled:
            if report.detection_round is not None:
                _FIRST_ALARM.set(report.detection_round)
            if report.first_deviation_round is not None:
                _FIRST_DEVIATION.set(report.first_deviation_round)
            delay = report.detection_delay_rounds()
            if delay is not None:
                _DETECTION_DELAY.set(delay)
        return report

    def _build_report(self, rounds_executed: int) -> SimulationReport:
        return SimulationReport(
            rounds_executed=rounds_executed,
            run=self.run,
            alarms={u.user_id: u.alarm for u in self.users if u.alarm is not None},
            first_deviation_round=self.server.first_deviation_round,
            operations_completed={u.user_id: len(u.completion_rounds) for u in self.users},
            completion_rounds={u.user_id: list(u.completion_rounds) for u in self.users},
            issue_rounds={u.user_id: list(u.issue_rounds) for u in self.users},
            messages_sent=self.network.messages_sent,
            broadcasts_sent=self.network.broadcasts_sent,
            server_operations=self.server.operations_served,
            metadata={},
        )
