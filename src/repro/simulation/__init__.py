"""The multi-agent simulation substrate (paper Section 2).

* :mod:`repro.simulation.clock` -- p-partial synchrony.
* :mod:`repro.simulation.events` -- runs and Definition 2.1 deviation.
* :mod:`repro.simulation.channels` -- bounded-delay messaging plus the
  users' broadcast channel.
* :mod:`repro.simulation.workload` -- CVS workload generators,
  including the partitionable workloads of Section 3.1.
* :mod:`repro.simulation.agents` / :mod:`repro.simulation.runner` --
  the round-driven execution engine with a ground-truth deviation
  oracle.
"""

from repro.simulation.agents import Alarm, ServerAgent, UserAgent
from repro.simulation.channels import BROADCAST, SERVER_ID, Envelope, Network
from repro.simulation.clock import LocalClock
from repro.simulation.events import (
    Action,
    Run,
    TimedAction,
    describe_query,
    deviates_from_all,
    prefix_deviates,
)
from repro.simulation.runner import Simulation, SimulationReport
from repro.simulation.workload import (
    Intent,
    Workload,
    back_to_back_workload,
    bursty_workload,
    epoch_workload,
    partitionable_workload,
    seed_queries,
    sleepy_workload,
    steady_workload,
    timezone_workload,
)

__all__ = [
    "Alarm",
    "ServerAgent",
    "UserAgent",
    "BROADCAST",
    "SERVER_ID",
    "Envelope",
    "Network",
    "LocalClock",
    "Action",
    "Run",
    "TimedAction",
    "describe_query",
    "deviates_from_all",
    "prefix_deviates",
    "Simulation",
    "SimulationReport",
    "Intent",
    "Workload",
    "back_to_back_workload",
    "bursty_workload",
    "epoch_workload",
    "partitionable_workload",
    "seed_queries",
    "sleepy_workload",
    "steady_workload",
    "timezone_workload",
]
