"""Message transport: point-to-point queues and the broadcast channel.

The paper assumes messages "are not lost and are delivered in bounded
time"; without loss of generality it considers delivery in a single
round.  :class:`Network` implements exactly that, with a configurable
fixed delay so experiments can stretch b*.

Protocols I and II additionally assume a reliable broadcast channel
among the users (the external communication Theorem 3.1 proves
necessary).  :class:`Network.broadcast` delivers one payload to every
user except the sender; the server never sees broadcast traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

SERVER_ID = "server"
BROADCAST = "*"


@dataclass(slots=True)
class Envelope:
    """One in-flight message.  Treated as immutable once queued; a plain
    slotted dataclass (rather than ``frozen=True``) because broadcasts
    create one envelope per recipient on the hot path and frozen
    construction costs ~4x."""

    sender: str
    recipient: str
    payload: object
    send_round: int
    deliver_round: int


@dataclass
class Network:
    """Reliable, in-order, bounded-delay message delivery.

    Messages sent in round m are delivered at round m + delay.  Within
    a (recipient, round) bucket, envelopes keep send order -- FIFO per
    link -- matching the paper's in-order message queues.
    """

    user_ids: list[str]
    delay: int = 1
    #: opt-in bandwidth accounting: encode every payload with the wire
    #: codec and accumulate ``bytes_sent`` (costs CPU; off by default).
    account_bytes: bool = False
    _pending: dict[int, list[Envelope]] = field(default_factory=dict)
    messages_sent: int = 0
    broadcasts_sent: int = 0
    bytes_sent: int = 0

    def _account(self, payload: object) -> None:
        if not self.account_bytes:
            return
        from repro.wire import WireError, wire_size

        try:
            self.bytes_sent += wire_size(payload)
        except WireError:
            # broadcast payloads are plain dicts of encodable values;
            # anything else is simulation-internal and not billed
            pass

    def send(self, sender: str, recipient: str, payload: object, round_no: int) -> None:
        """Queue a point-to-point message."""
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_round=round_no,
            deliver_round=round_no + self.delay,
        )
        self._pending.setdefault(envelope.deliver_round, []).append(envelope)
        self.messages_sent += 1
        self._account(payload)

    def broadcast(self, sender: str, payload: object, round_no: int) -> None:
        """Queue a broadcast to every *other* user (external channel)."""
        self.broadcasts_sent += 1
        for user_id in self.user_ids:
            if user_id == sender:
                continue
            envelope = Envelope(
                sender=sender,
                recipient=user_id,
                payload=payload,
                send_round=round_no,
                deliver_round=round_no + self.delay,
            )
            self._pending.setdefault(envelope.deliver_round, []).append(envelope)

    def deliveries(self, round_no: int) -> Iterable[Envelope]:
        """Pop every envelope due for delivery this round."""
        return self._pending.pop(round_no, [])

    def in_flight(self) -> int:
        return sum(len(batch) for batch in self._pending.values())
