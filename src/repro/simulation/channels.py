"""Message transport: point-to-point queues and the broadcast channel.

The paper assumes messages "are not lost and are delivered in bounded
time"; without loss of generality it considers delivery in a single
round.  :class:`Network` implements exactly that, with a configurable
fixed delay so experiments can stretch b*.

Protocols I and II additionally assume a reliable broadcast channel
among the users (the external communication Theorem 3.1 proves
necessary).  :class:`Network.broadcast` delivers one payload to every
user except the sender; the server never sees broadcast traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

SERVER_ID = "server"
BROADCAST = "*"

_ENVELOPES_SENT = _registry.counter(
    "sim.envelopes_sent", "point-to-point envelopes queued on the network")
_BROADCASTS = _registry.counter(
    "sim.broadcasts", "broadcast-channel sends (one per payload)")
_BROADCAST_ENVELOPES = _registry.counter(
    "sim.broadcast_envelopes", "per-recipient envelopes fanned out by broadcasts")
_WIRE_BYTES = _registry.counter(
    "sim.bytes_sent", "wire bytes accounted on the simulated network")


@dataclass(slots=True)
class Envelope:
    """One in-flight message.  Treated as immutable once queued; a plain
    slotted dataclass (rather than ``frozen=True``) because broadcasts
    create one envelope per recipient on the hot path and frozen
    construction costs ~4x."""

    sender: str
    recipient: str
    payload: object
    send_round: int
    deliver_round: int


@dataclass
class Network:
    """Reliable, in-order, bounded-delay message delivery.

    Messages sent in round m are delivered at round m + delay.  Within
    a (recipient, round) bucket, envelopes keep send order -- FIFO per
    link -- matching the paper's in-order message queues.
    """

    user_ids: list[str]
    delay: int = 1
    #: opt-in bandwidth accounting: encode every payload with the wire
    #: codec and accumulate ``bytes_sent`` (costs CPU; off by default).
    account_bytes: bool = False
    _pending: dict[int, list[Envelope]] = field(default_factory=dict)
    messages_sent: int = 0
    broadcasts_sent: int = 0
    bytes_sent: int = 0

    def _account(self, payload: object) -> None:
        if not self.account_bytes:
            return
        from repro.wire import WireError, wire_size

        try:
            size = wire_size(payload)
            self.bytes_sent += size
            _WIRE_BYTES.inc(size)
        except WireError:
            # broadcast payloads are plain dicts of encodable values;
            # anything else is simulation-internal and not billed
            pass

    def send(self, sender: str, recipient: str, payload: object, round_no: int) -> None:
        """Queue a point-to-point message."""
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_round=round_no,
            deliver_round=round_no + self.delay,
        )
        self._pending.setdefault(envelope.deliver_round, []).append(envelope)
        self.messages_sent += 1
        if _obs.enabled:
            _ENVELOPES_SENT.inc()
        self._account(payload)

    def broadcast(self, sender: str, payload: object, round_no: int) -> None:
        """Queue a broadcast to every *other* user (external channel)."""
        self.broadcasts_sent += 1
        if _obs.enabled:
            _BROADCASTS.inc()
            _BROADCAST_ENVELOPES.inc(
                len(self.user_ids) - (1 if sender in self.user_ids else 0))
        for user_id in self.user_ids:
            if user_id == sender:
                continue
            envelope = Envelope(
                sender=sender,
                recipient=user_id,
                payload=payload,
                send_round=round_no,
                deliver_round=round_no + self.delay,
            )
            self._pending.setdefault(envelope.deliver_round, []).append(envelope)

    def deliveries(self, round_no: int) -> Iterable[Envelope]:
        """Pop every envelope due for delivery this round."""
        return self._pending.pop(round_no, [])

    def in_flight(self) -> int:
        return sum(len(batch) for batch in self._pending.values())
