"""The Trusted CVS facade: a direct, in-process client/server API.

This is the developer-facing surface a downstream user adopts first:
a CVS-style server whose every answer carries a verification object,
and a client that checks everything and keeps only a root digest.

* :class:`CvsServer` stores, per file path, the *entire revision
  history* (an RCS store) as one Merkle-tree value -- so the root
  digest commits not just to head contents but to all of history.
* :class:`CvsClient` implements the Section 4.1 single-user loop:
  verify VO, advance the tracked root.  It exposes familiar CVS verbs
  (checkout, commit, log, diff, remove) and raises
  :class:`~repro.mtree.proofs.ProofError` on any server misbehaviour.

Multi-user deployments (where a single tracked root is not enough and
the paper's protocols take over) are built with
:mod:`repro.core.scenarios` instead.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest
from repro.mtree.database import (
    ClientVerifier,
    DeleteQuery,
    Query,
    QueryResult,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.storage.annotate import AnnotatedLine, annotate as _annotate
from repro.storage.diff import unified_diff
from repro.storage.keywords import collapse_keywords, expand_keywords
from repro.storage.merge import MergeResult, merge3
from repro.storage.rcs import Revision, RevisionStore


class CvsServer:
    """A CVS server over a verified database.

    The server is *not* trusted by clients: every response carries the
    VO that :class:`CvsClient` checks.  An honest instance behaves like
    a normal CVS; a compromised one is caught by the client.
    """

    def __init__(self, order: int = 8, shards: int = 1) -> None:
        self._database = VerifiedDatabase(order=order, shards=shards)

    @property
    def order(self) -> int:
        return self._database.order

    @property
    def spec(self):
        """The full store spec (order + shard layout) clients verify against."""
        return self._database.spec

    def root_digest(self) -> Digest:
        return self._database.root_digest()

    def execute(self, query: Query) -> QueryResult:
        """The single entry point clients talk to."""
        return self._database.execute(query)


def _branch_revision(store: RevisionStore, number: str) -> Revision:
    """Metadata for a branch revision number like ``1.2.2.3``."""
    branch_id, _, step_text = number.rpartition(".")
    return store.branch_log(branch_id)[int(step_text) - 1]


class CvsClient:
    """A verifying CVS client with constant local state (one digest).

    ``trusted_root`` pins the client to a previously verified root
    digest (e.g. one persisted across sessions); by default the client
    adopts the server's current root -- trust-on-first-use.
    """

    def __init__(self, server: CvsServer, author: str, trusted_root: Digest | None = None) -> None:
        self._server = server
        self.author = author
        initial = trusted_root if trusted_root is not None else server.root_digest()
        self._verifier = ClientVerifier(initial, order=server.spec)
        self._logical_time = 0

    @property
    def root_digest(self) -> Digest:
        """The tracked root digest (the client's entire trust state)."""
        return self._verifier.root_digest

    # -- internals ----------------------------------------------------------

    def _run(self, query: Query) -> object:
        result = self._server.execute(query)
        return self._verifier.apply(query, result)

    def _key(self, path: str) -> bytes:
        return path.encode("utf-8")

    def _load_store(self, path: str) -> RevisionStore | None:
        blob = self._run(ReadQuery(key=self._key(path)))
        if blob is None:
            return None
        return RevisionStore.deserialize(blob)

    def _save_store(self, path: str, store: RevisionStore) -> None:
        self._run(WriteQuery(key=self._key(path), value=store.serialize()))

    # -- CVS verbs ------------------------------------------------------------

    def paths(self, prefix: str = "") -> list[str]:
        """All live file paths under ``prefix`` (a verified range read)."""
        low = prefix.encode("utf-8")
        high = prefix.encode("utf-8") + b"\xff" * 4
        entries = self._run(RangeQuery(low=low, high=high))
        alive = []
        for key, blob in entries:
            store = RevisionStore.deserialize(blob)
            if not store.is_dead:
                alive.append(key.decode("utf-8"))
        return alive

    def checkout(self, path: str, revision: str | None = None,
                 expand: bool = False) -> list[str]:
        """Verified checkout of one file (head or a named revision).

        ``expand=True`` performs RCS keyword expansion (``$Id$``,
        ``$Revision$``, ...) against the checked-out revision's
        metadata.
        """
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        lines = store.checkout(revision)
        if expand:
            target = revision or store.head_number
            lines = expand_keywords(lines, path, store.revision(target)
                                    if target.count(".") < 3
                                    else _branch_revision(store, target))
        return lines

    def commit(self, path: str, lines: list[str], log_message: str = "") -> Revision:
        """Commit new content for ``path`` (creating it if needed).

        Expanded RCS keywords are collapsed to their bare form before
        storage, so keyword churn never pollutes deltas or merges.
        """
        self._logical_time += 1
        lines = collapse_keywords(lines)
        store = self._load_store(path)
        if store is None:
            store = RevisionStore()
        if store.is_dead:
            revision = store.resurrect(lines, self.author, log_message, self._logical_time)
        else:
            revision = store.commit(lines, self.author, log_message, self._logical_time)
        self._save_store(path, store)
        return revision

    def annotate(self, path: str, revision: str | None = None) -> list[AnnotatedLine]:
        """``cvs annotate``: per-line revision/author attribution."""
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        return _annotate(store, revision)

    def commit_many(self, changes: dict[str, list[str]], log_message: str = "") -> dict[str, Revision]:
        """Commit several files in one call (CVS-style: per-file
        revisions, no cross-file atomicity -- each write is separately
        verified and the root digest advances through all of them)."""
        if not changes:
            raise ValueError("empty commit")
        revisions: dict[str, Revision] = {}
        for path in sorted(changes):
            revisions[path] = self.commit(path, changes[path], log_message)
        return revisions

    def remove(self, path: str, log_message: str = "") -> Revision:
        """``cvs remove``: mark the file dead (history is preserved)."""
        self._logical_time += 1
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        revision = store.remove(self.author, log_message, self._logical_time)
        self._save_store(path, store)
        return revision

    def log(self, path: str) -> list[Revision]:
        """Verified revision log of one file."""
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        return store.log()

    def diff(self, path: str, old_revision: str, new_revision: str | None = None) -> str:
        """Unified diff between two revisions of ``path``."""
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        old_lines = store.checkout(old_revision)
        new_lines = store.checkout(new_revision)
        new_label = new_revision or store.head_number or "head"
        return unified_diff(old_lines, new_lines,
                            f"{path} {old_revision}", f"{path} {new_label}")

    # -- branches ------------------------------------------------------------

    def branch(self, path: str, at_revision: str | None = None) -> str:
        """Open a branch on ``path`` (default: at the head revision)."""
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        if at_revision is None:
            at_revision = store.head_number
        branch_id = store.create_branch(at_revision)
        self._save_store(path, store)
        return branch_id

    def branches(self, path: str) -> list[str]:
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        return store.branches()

    def commit_on_branch(self, path: str, branch_id: str, lines: list[str],
                         log_message: str = "") -> Revision:
        """Commit onto a branch of ``path``."""
        self._logical_time += 1
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        revision = store.commit_on_branch(branch_id, lines, self.author,
                                          log_message, self._logical_time)
        self._save_store(path, store)
        return revision

    def merge_branch(self, path: str, branch_id: str, log_message: str = "") -> MergeResult:
        """Merge a branch head back into the trunk head.

        On a clean merge the result is committed to the trunk and
        returned; on conflicts nothing is committed -- resolve by hand
        (``render_with_markers``) and commit the resolution.
        """
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        branch_head = store.branch_head(branch_id)
        if branch_head is None:
            raise ValueError(f"branch {branch_id!r} has no commits to merge")
        base = store.checkout(store.branch_base(branch_id))
        trunk = store.checkout()
        branch_lines = store.checkout(branch_head)
        result = merge3(base, trunk, branch_lines)
        if not result.has_conflicts:
            self.commit(path, result.lines(),
                        log_message or f"merge {branch_id} into trunk")
        return result

    def update(self, path: str, working_lines: list[str], base_revision: str) -> MergeResult:
        """``cvs update``: merge the repository head into a working copy.

        ``working_lines`` is the user's locally edited copy, derived
        from ``base_revision``.  Returns a
        :class:`~repro.storage.merge.MergeResult`: call ``.lines()`` if
        clean, or :func:`~repro.storage.merge.render_with_markers` to
        materialise conflicts for hand resolution.  Both the base and
        head revisions are fetched *verified*.
        """
        store = self._load_store(path)
        if store is None:
            raise FileNotFoundError(f"no such file in repository: {path!r}")
        base = store.checkout(base_revision)
        head = store.checkout()
        return merge3(base, working_lines, head)

    def purge(self, path: str) -> None:
        """Administratively erase a file *and its history* (rarely what
        you want -- ``remove`` keeps history)."""
        self._run(DeleteQuery(key=self._key(path)))
