"""The top-level Trusted CVS API.

* :class:`~repro.core.facade.CvsServer` /
  :class:`~repro.core.facade.CvsClient` -- the direct, in-process
  verified CVS (single-user verification loop of Section 4.1).
* :func:`~repro.core.scenarios.build_simulation` -- multi-user
  simulations with Protocols I/II/III, baselines, and attacks.
"""

from repro.core.facade import CvsClient, CvsServer
from repro.core.scenarios import (
    PROTOCOLS,
    SIM_KEY_BITS,
    ScenarioKeys,
    build_simulation,
    make_keys,
    populate_database,
)

__all__ = [
    "CvsClient",
    "CvsServer",
    "PROTOCOLS",
    "SIM_KEY_BITS",
    "ScenarioKeys",
    "build_simulation",
    "make_keys",
    "populate_database",
]
