"""Scenario builders: wire databases, protocols, agents, and attacks
into ready-to-run simulations.

Every experiment in :mod:`benchmarks` and most integration tests start
here: pick a protocol ("naive", "tokenpass", "protocol1", "protocol2",
"protocol3"), a workload, and optionally an attack, and get back a
:class:`~repro.simulation.runner.Simulation`.

Key generation is deterministic (seeded) and uses short RSA moduli by
default -- the simulations need unforgeability against the simulated
server, not real-world security margins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pki import CertificateAuthority, build_verifier
from repro.crypto.signatures import Signer, Verifier
from repro.mtree.database import VerifiedDatabase, WriteQuery
from repro.protocols.base import ProtocolClient, ServerProtocol, ServerState
from repro.protocols.aggregation import AggregatedProtocol2Client
from repro.protocols.naive import NaiveClient, NaiveServer
from repro.protocols.protocol1 import Protocol1Client, Protocol1Server, bootstrap_server_state
from repro.protocols.protocol2 import (
    Protocol2Client,
    Protocol2Server,
    Protocol2StrongClient,
)
from repro.protocols.protocol3 import Protocol3Client, Protocol3Server
from repro.protocols.tokenpass import (
    TokenPassClient,
    TokenPassServer,
    bootstrap_server_state as bootstrap_tokenpass,
)
from repro.server.attacks import Attack
from repro.simulation.agents import ServerAgent, UserAgent
from repro.simulation.channels import Network  # noqa: F401  (re-exported for callers)
from repro.simulation.runner import Simulation
from repro.simulation.workload import Workload

PROTOCOLS = ("naive", "tokenpass", "protocol1", "protocol2", "protocol2strong",
             "protocol2agg", "protocol3")

# Simulation-grade RSA keys: unforgeable to the simulated adversary,
# cheap enough to generate dozens per scenario.
SIM_KEY_BITS = 512


@dataclass
class ScenarioKeys:
    """Deterministic key material for one scenario."""

    ca: CertificateAuthority
    signers: dict[str, Signer]
    verifier: Verifier


def make_keys(user_ids: list[str], seed: int = 0, bits: int = SIM_KEY_BITS) -> ScenarioKeys:
    """Generate a CA, per-user signers, and a certificate-backed verifier."""
    ca = CertificateAuthority(bits=bits, seed=seed * 7919 + 1)
    signers = {
        user_id: Signer.generate(user_id, bits=bits, seed=seed * 7919 + 2 + index)
        for index, user_id in enumerate(sorted(user_ids))
    }
    certificates = [ca.issue(user_id, signer.public_key) for user_id, signer in signers.items()]
    verifier = build_verifier(certificates, ca.public_key)
    return ScenarioKeys(ca=ca, signers=signers, verifier=verifier)


def populate_database(database: VerifiedDatabase, workload: Workload) -> None:
    """Pre-load every key the workload will ever touch, so reads hit
    populated data and stale answers are distinguishable."""
    keys: set[bytes] = set()
    for intents in workload.schedules.values():
        for intent in intents:
            query = intent.query
            for attribute in ("key", "low", "high"):
                if hasattr(query, attribute):
                    keys.add(getattr(query, attribute))
    for key in sorted(keys):
        database.execute(WriteQuery(key=key, value=b"// initial revision\n"))


def build_simulation(
    protocol: str,
    workload: Workload,
    attack: Attack | None = None,
    k: int = 8,
    epoch_length: int = 40,
    order: int = 8,
    shards: int = 1,
    seed: int = 0,
    service_rate: int | None = None,
    slot_length: int = 6,
    p: int = 1,
    keep_checkpoints: bool = False,
    network: Network | None = None,
    offline: dict[str, set[int]] | None = None,
    transaction_timeout: int = 30,
    populate_from: Workload | None = None,
) -> Simulation:
    """Assemble a full simulation for one protocol + workload + attack."""
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; pick one of {PROTOCOLS}")
    user_ids = workload.user_ids
    if not user_ids:
        raise ValueError("workload has no users")

    database = VerifiedDatabase(order=order, shards=shards)
    # populate_from lets run-comparison experiments (Theorem 3.1's
    # rA / rB / r construction) start every run from the same state
    # even when the workloads' key sets differ.
    populate_database(database, populate_from or workload)
    initial_root = database.root_digest()
    state = ServerState(database=database)
    # Clients verify against the full store spec; when unsharded this
    # is just the plain branching order, as before.
    order = database.spec if database.spec.sharded else order

    needs_keys = protocol in ("protocol1", "protocol3", "tokenpass")
    keys = make_keys(user_ids, seed=seed) if needs_keys else None

    server_protocol: ServerProtocol
    clients: dict[str, ProtocolClient] = {}

    if protocol == "naive":
        server_protocol = NaiveServer()
        clients = {u: NaiveClient(u) for u in user_ids}
    elif protocol == "tokenpass":
        server_protocol = TokenPassServer()
        elected = keys.signers[user_ids[0]]
        bootstrap_tokenpass(state, elected)
        # Let the token keep cycling for a few full rotations past the
        # workload horizon (time enough to detect late attacks), then
        # go quiet so the simulation can drain.
        quiet_after = workload.horizon() + 6 * slot_length * len(user_ids)
        clients = {
            u: TokenPassClient(u, user_ids, keys.signers[u], keys.verifier,
                               slot_length=slot_length, order=order,
                               quiet_after=quiet_after)
            for u in user_ids
        }
    elif protocol == "protocol1":
        server_protocol = Protocol1Server()
        elected = keys.signers[user_ids[0]]
        bootstrap_server_state(state, elected)
        clients = {
            u: Protocol1Client(u, user_ids, k, keys.signers[u], keys.verifier, order=order)
            for u in user_ids
        }
    elif protocol == "protocol2":
        server_protocol = Protocol2Server()
        clients = {
            u: Protocol2Client(u, user_ids, k, initial_root, order=order,
                               keep_checkpoints=keep_checkpoints)
            for u in user_ids
        }
    elif protocol == "protocol2strong":
        server_protocol = Protocol2Server()
        clients = {
            u: Protocol2StrongClient(u, user_ids, k, initial_root, order=order,
                                     keep_checkpoints=keep_checkpoints)
            for u in user_ids
        }
    elif protocol == "protocol2agg":
        server_protocol = Protocol2Server()
        clients = {
            u: AggregatedProtocol2Client(u, user_ids, k, initial_root, order=order,
                                         keep_checkpoints=keep_checkpoints)
            for u in user_ids
        }
    else:  # protocol3
        server_protocol = Protocol3Server(epoch_length=epoch_length)
        clients = {
            u: Protocol3Client(
                u,
                user_ids,
                epoch_length,
                initial_root,
                keys.signers[u],
                keys.verifier,
                order=order,
                p=p,
                clock_seed=seed + index,
            )
            for index, u in enumerate(user_ids)
        }

    server = ServerAgent(server_protocol, state, attack=attack, service_rate=service_rate)
    offline = offline or {}
    users = [
        UserAgent(
            user_id,
            clients[user_id],
            workload.schedules[user_id],
            transaction_timeout=transaction_timeout,
            offline_rounds=offline.get(user_id),
        )
        for user_id in user_ids
    ]
    network = network or Network(user_ids=user_ids)
    return Simulation(server=server, users=users, network=network)
