"""A verifying TCP client with Protocol II registers.

Connects to a :class:`~repro.net.server.TrustedCvsTcpServer`, sends
queries over the wire format, and verifies every response exactly as
the simulated Protocol II client does: derive the old/new roots from
the VO, check the counter, accumulate the tagged-state XOR registers.

Several clients sharing a server can check their collective view with
:func:`sync_check` -- the Protocol II synchronisation predicate over
registers exchanged out-of-band (users trust each other; how they meet
is outside the server's control, which is the whole point).
"""

from __future__ import annotations

import socket
import time

from repro.crypto.hashing import Digest, hash_tagged_state, xor_all
from repro.mtree.database import DeleteQuery, Query, RangeQuery, ReadQuery, WriteQuery
from repro.mtree.proofs import ProofError
from repro.net.framing import recv_message, send_message
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import ErrorReply, Request, Response
from repro.protocols.protocol2 import INITIAL_OWNER, initial_state_tag
from repro.protocols.verify import derive_outcome

_CLIENT_OP_MS = _registry.histogram(
    "net.client_op_ms", "round-trip client operation latency (send to verified)")


class IntegrityError(Exception):
    """The server's response is inconsistent with every honest history."""


class ServerBusyError(IntegrityError):
    """The server refused the request: it stayed blocked on another
    client's follow-up signature past its block timeout (Protocol I).
    The session remains usable -- retry once the operator catches up."""

    def __init__(self, reply: ErrorReply) -> None:
        super().__init__(reply.reason or "server busy")
        self.reply = reply


def _expect_response(message: object) -> Response:
    if isinstance(message, ErrorReply):
        raise ServerBusyError(message)
    if not isinstance(message, Response):
        raise IntegrityError("server closed the connection or spoke garbage")
    return message


class RemoteClient:
    """One user's verified session against a TCP server."""

    def __init__(self, host: str, port: int, user_id: str,
                 initial_root: Digest, order: int = 8) -> None:
        self.user_id = user_id
        self._order = order
        self._initial_tag = initial_state_tag(initial_root)
        self.sigma = Digest.zero()
        self.last = Digest.zero()
        self.gctr = 0
        self.operations = 0
        self._sock = socket.create_connection((host, port))

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def execute(self, query: Query) -> object:
        """Send a query; verify the response; return the trusted answer."""
        started = time.perf_counter_ns() if _obs.enabled else 0
        send_message(self._sock, Request(query=query, extras={"user": self.user_id}))
        response = _expect_response(recv_message(self._sock))
        try:
            ctr = int(response.extras["ctr"])
            last_user = response.extras["last_user"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError("malformed response") from exc
        if ctr < self.gctr:
            raise IntegrityError(
                f"operation counter regressed: {ctr} after {self.gctr}")
        if ctr == 0 and last_user != INITIAL_OWNER:
            raise IntegrityError("initial state attributed to a user")
        try:
            outcome = derive_outcome(query, response.result, self._order)
        except ProofError as exc:
            raise IntegrityError(f"verification object rejected: {exc}") from exc
        old_tag = hash_tagged_state(outcome.old_root, ctr, last_user)
        new_tag = hash_tagged_state(outcome.new_root, ctr + 1, self.user_id)
        self.sigma = self.sigma ^ old_tag ^ new_tag
        self.last = new_tag
        self.gctr = ctr + 1
        self.operations += 1
        if started:
            _CLIENT_OP_MS.observe(
                (time.perf_counter_ns() - started) / 1e6, user=self.user_id)
        return outcome.answer

    # convenience verbs
    def get(self, key: bytes) -> bytes | None:
        return self.execute(ReadQuery(key))

    def put(self, key: bytes, value: bytes) -> None:
        self.execute(WriteQuery(key, value))

    def delete(self, key: bytes) -> None:
        self.execute(DeleteQuery(key))

    def scan(self, low: bytes, high: bytes):
        return self.execute(RangeQuery(low, high))

    def registers(self) -> dict:
        """This user's contribution to a sync check."""
        return {"sigma": self.sigma, "last": self.last}


class RemoteClientP1:
    """A Protocol I session over TCP: signed roots, blocking follow-up.

    Needs a signer (this user's key) and a verifier holding every
    user's public key (from the PKI); after each verified operation the
    client sends back ``sign_i(h(new_root || ctr + 1))``, unblocking
    the server for the next query.
    """

    def __init__(self, host: str, port: int, user_id: str,
                 signer, verifier, order: int = 8) -> None:
        from repro.crypto.hashing import hash_state

        self._hash_state = hash_state
        self.user_id = user_id
        self._order = order
        self._signer = signer
        self._verifier = verifier
        self.lctr = 0
        self.gctr = 0
        self._sock = socket.create_connection((host, port))

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteClientP1":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def execute(self, query: Query) -> object:
        from repro.crypto.signatures import Signature
        from repro.protocols.base import Followup

        started = time.perf_counter_ns() if _obs.enabled else 0
        send_message(self._sock, Request(query=query, extras={"user": self.user_id}))
        response = _expect_response(recv_message(self._sock))
        try:
            ctr = int(response.extras["ctr"])
            last_user = response.extras["last_user"]
            signature = response.extras["sig"]
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError("malformed response") from exc
        if ctr < self.gctr:
            raise IntegrityError(f"operation counter regressed: {ctr} after {self.gctr}")
        try:
            outcome = derive_outcome(query, response.result, self._order)
        except ProofError as exc:
            raise IntegrityError(f"verification object rejected: {exc}") from exc
        expected = self._hash_state(outcome.old_root, ctr)
        if not isinstance(signature, Signature) or signature.signer_id != last_user \
                or not self._verifier.verify(signature, expected):
            raise IntegrityError("illegitimate state signature")
        self.lctr += 1
        self.gctr = ctr + 1
        new_sig = self._signer.sign(self._hash_state(outcome.new_root, ctr + 1))
        send_message(self._sock, Followup(extras={"sig": new_sig, "user": self.user_id}))
        if started:
            _CLIENT_OP_MS.observe(
                (time.perf_counter_ns() - started) / 1e6, user=self.user_id)
        return outcome.answer

    def get(self, key: bytes) -> bytes | None:
        return self.execute(ReadQuery(key))

    def put(self, key: bytes, value: bytes) -> None:
        self.execute(WriteQuery(key, value))

    def counts(self) -> dict:
        """This user's contribution to the Protocol I count sync."""
        return {"lctr": self.lctr, "gctr": self.gctr}


def count_sync_check(counts: dict[str, dict]) -> bool:
    """Protocol I's predicate over exchanged counts: some user's gctr
    must equal the total of everyone's lctr."""
    total = sum(entry["lctr"] for entry in counts.values())
    operated = [entry for entry in counts.values() if entry["lctr"] > 0]
    if not operated:
        return total == 0
    return any(entry["gctr"] == total for entry in operated)


def sync_check(initial_root: Digest, registers: dict[str, dict]) -> bool:
    """The Protocol II predicate over all users' exchanged registers.

    True iff the server's behaviour is consistent with one serial
    history (Theorem 4.2); exchange the registers over any channel the
    server does not control.
    """
    initial_tag = initial_state_tag(initial_root)
    total = xor_all(entry["sigma"] for entry in registers.values())
    lasts = [entry["last"] for entry in registers.values() if entry["last"]]
    if not lasts:
        return total == Digest.zero()
    return any((initial_tag ^ last) == total for last in lasts)
