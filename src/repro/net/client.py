"""A verifying TCP client with Protocol II registers.

Connects to a :class:`~repro.net.server.TrustedCvsTcpServer`, sends
queries over the wire format, and verifies every response exactly as
the simulated Protocol II client does: derive the old/new roots from
the VO, check the counter, accumulate the tagged-state XOR registers.

Several clients sharing a server can check their collective view with
:func:`sync_check` -- the Protocol II synchronisation predicate over
registers exchanged out-of-band (users trust each other; how they meet
is outside the server's control, which is the whole point).

Self-healing: the client stamps every logical operation with an
idempotent request id, so when a connection drops (or an operation
times out) it reconnects with capped exponential backoff + jitter and
resends the same id -- the server's dedup table guarantees the write is
applied exactly once whichever side of the failure it landed on.  The
trust anchor (initial tag, XOR registers, counter) can be persisted to
a file so a restarted *client* resumes verification where it left off.
Failures that exhaust the retry budget surface as
:class:`TransientNetworkError` -- explicitly *not* an integrity
verdict; nothing about a flaky link implicates the server's honesty.
"""

from __future__ import annotations

import os
import random
import socket
import time

from repro.crypto.hashing import Digest, hash_tagged_state, xor_all
from repro.mtree.database import DeleteQuery, Query, RangeQuery, ReadQuery, WriteQuery
from repro.mtree.forest import StoreSpec
from repro.mtree.proofs import ProofError
from repro.net.framing import FramingError, recv_message, send_message
from repro.storage.atomic import atomic_write
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import ErrorReply, Request, Response
from repro.protocols.protocol2 import INITIAL_OWNER, initial_state_tag
from repro.protocols.verify import derive_outcome
from repro.wire import WireError

#: default socket timeouts -- a hung server must not block a client
#: forever; the timeout surfaces as a retryable failure instead.
CONNECT_TIMEOUT_SECONDS = 5.0
OP_TIMEOUT_SECONDS = 15.0

_CLIENT_OP_MS = _registry.histogram(
    "net.client_op_ms", "round-trip client operation latency (send to verified)")
_RECONNECTS = _registry.counter(
    "net.reconnects", "client reconnections after a lost/failed connection")
_RETRIES = _registry.counter(
    "net.retries", "client operation retries, by reason (io/busy)")
_DETECTIONS = _registry.counter(
    "net.detections", "integrity violations detected by verifying clients")


class IntegrityError(Exception):
    """The server's response is inconsistent with every honest history."""


class ServerBusyError(IntegrityError):
    """The server refused the request: it stayed blocked on another
    client's follow-up signature past its block timeout (Protocol I).
    The session remains usable -- retry once the operator catches up."""

    def __init__(self, reply: ErrorReply) -> None:
        super().__init__(reply.reason or "server busy")
        self.reply = reply


class TransientNetworkError(Exception):
    """The operation could not complete over the network (connection
    refused/lost, timeout, server busy past the retry budget).  This is
    a *liveness* failure, not an integrity one: retrying later is safe
    because operations carry idempotent request ids."""


class ReplicationDivergence(IntegrityError):
    """A witness quorum proved the primary served this client a root
    lineage it never deposited (fork) or deposited two lineages at once
    (equivocation).  ``deviant`` names the replica the evidence bundle
    at ``evidence_path`` implicates."""

    def __init__(self, reason: str, deviant: str = "primary",
                 evidence_path: str | None = None) -> None:
        super().__init__(reason)
        self.deviant = deviant
        self.evidence_path = evidence_path


class EndpointConnector:
    """Sticky failover over an ordered ``[(host, port), ...]`` list.

    One code path for every multi-server client: the operation clients
    (:class:`RemoteClient` and subclasses) and the witness fetch in
    :class:`~repro.net.replication.QuorumChecker` both connect through
    it.  A connect tries the *current* endpoint first -- reconnects
    prefer the server the session last spoke to, keeping dedup windows
    and blocking state warm -- then rotates through the rest in order.
    One full pass with no listener raises the last ``OSError``, so the
    caller's retry budget counts a pass as a single attempt.
    """

    def __init__(self, endpoints, connect_timeout: float,
                 op_timeout: float) -> None:
        self.endpoints = [(str(host), int(port)) for host, port in endpoints]
        if not self.endpoints:
            raise ValueError("endpoint list must not be empty")
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._index = 0
        self.failovers = 0

    @property
    def current(self) -> tuple[str, int]:
        return self.endpoints[self._index]

    def describe(self) -> str:
        return ", ".join(f"{host}:{port}" for host, port in self.endpoints)

    def connect(self) -> socket.socket:
        last_error: OSError | None = None
        for offset in range(len(self.endpoints)):
            index = (self._index + offset) % len(self.endpoints)
            try:
                sock = socket.create_connection(
                    self.endpoints[index], timeout=self._connect_timeout)
            except OSError as exc:
                last_error = exc
                continue
            sock.settimeout(self._op_timeout)
            if index != self._index:
                self.failovers += 1
                self._index = index
            return sock
        raise last_error


class RetryPolicy:
    """Capped exponential backoff with jitter, driven by a seeded RNG.

    ``attempts`` bounds tries per operation (the first try included);
    the delay before retry ``n`` is ``min(cap, base * 2**n)`` scaled by
    a uniform jitter factor in ``[1 - jitter, 1]``.  A seeded policy
    produces a reproducible backoff schedule -- the chaos harness runs
    on fixed seeds end to end.
    """

    def __init__(self, attempts: int = 6, base: float = 0.05,
                 cap: float = 2.0, jitter: float = 0.5,
                 busy_attempts: int = 4, seed: int | None = None) -> None:
        if attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        self.attempts = attempts
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.busy_attempts = busy_attempts
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * (2 ** attempt))
        return raw * (1.0 - self.jitter * self._rng.random())


def _expect_response(message: object) -> Response:
    if isinstance(message, ErrorReply):
        raise ServerBusyError(message)
    if not isinstance(message, Response):
        raise IntegrityError("server closed the connection or spoke garbage")
    return message


_ANCHOR_MAGIC = "client-anchor 1"


class RemoteClient:
    """One user's verified session against a TCP server.

    ``anchor_path`` (optional) persists the trust anchor -- initial
    tag, sigma/last registers, counter, and the request-id sequence --
    after every verified operation, so a restarted client process can
    resume the same session: pass the same path and ``initial_root``
    may be omitted.

    ``endpoints`` (optional) replaces the single ``host``/``port`` pair
    with an ordered failover list: every connect and reconnect walks it
    through one shared :class:`EndpointConnector`.  ``quorum`` attaches
    a :class:`~repro.net.replication.QuorumChecker`; each verified
    operation's expected ``(ctr, new_root)`` is then recorded and
    confirmed against f+1 random witnesses every ``quorum_every``
    operations (and on demand via :meth:`quorum_check`).
    """

    def __init__(self, host: str, port: int | None = None,
                 user_id: str = "anonymous",
                 initial_root: Digest | None = None,
                 order: "int | StoreSpec" = 8,
                 connect_timeout: float = CONNECT_TIMEOUT_SECONDS,
                 op_timeout: float = OP_TIMEOUT_SECONDS,
                 retry: RetryPolicy | None = None,
                 anchor_path: str | None = None,
                 evidence_dir: str | None = None,
                 endpoints=None,
                 quorum=None, quorum_every: int = 8) -> None:
        self.user_id = user_id
        self._order = order
        if endpoints is None:
            if port is None and isinstance(host, (list, tuple)):
                endpoints = list(host)
            else:
                endpoints = [(host, port)]
        self._connector = EndpointConnector(
            endpoints, connect_timeout, op_timeout)
        self._host, self._port = self._connector.current
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self.quorum = quorum
        if quorum is not None:
            quorum.set_order(order)
        if quorum_every < 1:
            raise ValueError("quorum_every must be at least 1")
        self._quorum_every = quorum_every
        self._ops_since_quorum = 0
        self._retry = retry or RetryPolicy()
        self._anchor_path = anchor_path
        self._evidence_dir = evidence_dir
        self._capture: list[bytes] = []
        self.sigma = Digest.zero()
        self.last = Digest.zero()
        self.gctr = 0
        self.operations = 0
        self._seq = 0
        # Request ids must name a *logical operation* uniquely for as
        # long as the server's dedup window may remember it.  A bare
        # ``user:seq`` resets with every anchor-less client object, so
        # a new session for the same user could collide with the old
        # session's window; the per-session nonce rules that out.  The
        # anchor persists it, so a resumed process keeps deduping its
        # own in-flight retries.
        self._rid_nonce = os.urandom(4).hex()
        self._initial_tag = None
        if anchor_path is not None and os.path.isfile(anchor_path):
            self._load_anchor()
        if self._initial_tag is None:
            if initial_root is None:
                raise ValueError(
                    "initial_root is required unless a saved anchor exists")
            self._initial_tag = initial_state_tag(initial_root)
        self._sock: socket.socket | None = None
        self._connect_with_retry()

    # -- connection management --------------------------------------------

    def _connect_with_retry(self) -> None:
        """The constructor's first connect, under the same retry budget
        as every other transport failure: a server mid-restart must not
        kill client construction with a raw OSError."""
        last_error: Exception | None = None
        for attempt in range(self._retry.attempts):
            try:
                self._connect(first=True)
                return
            except OSError as exc:
                last_error = exc
                if _obs.enabled:
                    _RETRIES.inc(reason="io", user=self.user_id)
                if attempt + 1 < self._retry.attempts:
                    time.sleep(self._retry.delay(attempt))
        raise TransientNetworkError(
            f"could not connect to {self._connector.describe()} after "
            f"{self._retry.attempts} attempt(s): {last_error}") from last_error

    def _connect(self, first: bool = False) -> None:
        self._sock = self._connector.connect()
        self._host, self._port = self._connector.current
        if not first and _obs.enabled:
            _RECONNECTS.inc(user=self.user_id)

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()
        if self.quorum is not None:
            self.quorum.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- anchor persistence -------------------------------------------------

    def _load_anchor(self) -> None:
        """Parse the persisted trust anchor, defensively.

        The anchor file is the client's root of trust; a corrupted or
        truncated one must be rejected with an explicit
        :class:`IntegrityError` -- never a raw parse crash, and never a
        silent fallback to some partially-read register state.  An
        anchor that parses fine but names a *different* user is a
        caller mix-up, not corruption: that stays ``ValueError``.
        """
        def corrupt(detail: str, cause: Exception | None = None):
            error = IntegrityError(
                f"trust anchor {self._anchor_path!r} is corrupted or "
                f"truncated: {detail}")
            raise error from cause

        try:
            with open(self._anchor_path, "r", encoding="ascii") as handle:
                lines = handle.read().splitlines()
        except UnicodeDecodeError as exc:
            corrupt("not ASCII text", exc)
        except OSError as exc:
            corrupt(f"unreadable ({exc})", exc)
        if not lines or lines[0] != _ANCHOR_MAGIC:
            corrupt("missing anchor magic header")
        fields = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(" ")
            if not _ or not value:
                corrupt(f"malformed field line {line!r}")
            fields[name] = value
        if "user" not in fields:
            corrupt("no user field")
        if fields["user"] != self.user_id:
            raise ValueError(
                f"anchor belongs to {fields['user']!r}, not {self.user_id!r}")
        try:
            self._initial_tag = Digest.from_hex(fields["initial_tag"])
            self.sigma = Digest.from_hex(fields["sigma"])
            self.last = Digest.from_hex(fields["last"])
            self.gctr = int(fields["gctr"])
            self.operations = int(fields["operations"])
            self._seq = int(fields["seq"])
            # absent in pre-nonce anchors: keep their bare rid format
            self._rid_nonce = fields.get("nonce", "")
        except KeyError as exc:
            corrupt(f"missing field {exc.args[0]!r}", exc)
        except ValueError as exc:
            corrupt(f"unparseable field value ({exc})", exc)

    def save_anchor(self) -> None:
        """Persist the trust anchor atomically and durably.

        The anchor is the client's entire defence against a forking
        server; it gets the full tmp + fsync + rename + dir-fsync
        sequence so a crash can never leave a torn or resurrected-stale
        anchor behind.
        """
        if self._anchor_path is None:
            return
        lines = [
            _ANCHOR_MAGIC,
            f"user {self.user_id}",
            f"initial_tag {self._initial_tag.hex()}",
            f"sigma {self.sigma.hex()}",
            f"last {self.last.hex()}",
            f"gctr {self.gctr}",
            f"operations {self.operations}",
            f"seq {self._seq}",
        ]
        if self._rid_nonce:
            lines.append(f"nonce {self._rid_nonce}")
        atomic_write(self._anchor_path,
                     ("\n".join(lines) + "\n").encode("ascii"))

    # -- operations ---------------------------------------------------------

    def _exchange(self, request: Request) -> Response:
        """Send one request and read its response, reconnecting and
        retrying on transport failures.  Safe to resend verbatim: the
        request id makes the server apply it at most once."""
        policy = self._retry
        io_failures = 0
        busy_failures = 0
        last_error: Exception | None = None
        while io_failures < policy.attempts and busy_failures < policy.busy_attempts:
            try:
                if self._sock is None:
                    self._connect()
                send_message(self._sock, request)
                message = recv_message(self._sock, capture=self._capture)
                if message is None:
                    raise FramingError("server closed the connection")
                return _expect_response(message)
            except ServerBusyError as exc:
                # The session is intact -- the server refused, it did
                # not vanish.  Back off and re-ask without reconnecting.
                busy_failures += 1
                last_error = exc
                if _obs.enabled:
                    _RETRIES.inc(reason="busy", user=self.user_id)
                if busy_failures < policy.busy_attempts:
                    time.sleep(policy.delay(busy_failures - 1))
            except (OSError, FramingError, WireError) as exc:
                # Connection-level failure: the stream may be mid-frame
                # desynchronised, so the only safe move is a fresh
                # connection and a verbatim resend.
                io_failures += 1
                last_error = exc
                self._drop_connection()
                if _obs.enabled:
                    _RETRIES.inc(reason="io", user=self.user_id)
                if io_failures < policy.attempts:
                    time.sleep(policy.delay(io_failures - 1))
        raise TransientNetworkError(
            f"operation failed after {io_failures} connection failure(s) and "
            f"{busy_failures} busy refusal(s): {last_error}") from last_error

    def _rid(self, seq: int) -> str:
        """The idempotency token for logical operation ``seq``."""
        if self._rid_nonce:
            return f"{self.user_id}:{self._rid_nonce}:{seq}"
        return f"{self.user_id}:{seq}"

    def execute(self, query: Query) -> object:
        """Send a query; verify the response; return the trusted answer."""
        started = time.perf_counter_ns() if _obs.enabled else 0
        request = Request(query=query, extras={
            "user": self.user_id, "rid": self._rid(self._seq)})
        self._capture.clear()
        response = self._exchange(request)
        answer = self._absorb(query, request, response)
        self._seq += 1
        if self._anchor_path is not None:
            self.save_anchor()
        if started:
            _CLIENT_OP_MS.observe(
                (time.perf_counter_ns() - started) / 1e6, user=self.user_id)
        return answer

    def _absorb(self, query: Query, request: Request,
                response: Response) -> object:
        """Verify one response and fold it into the registers.

        The verification core shared by the stop-and-wait path above
        and the pipelined client
        (:class:`~repro.net.pipeline.PipelinedRemoteClient`): counter
        regression check, VO-derived root transition, tagged-state XOR
        accumulation, evidence capture on detection.
        """
        try:
            try:
                ctr = int(response.extras["ctr"])
                last_user = response.extras["last_user"]
            except (KeyError, TypeError, ValueError) as exc:
                raise IntegrityError("malformed response") from exc
            if ctr < self.gctr:
                raise IntegrityError(
                    f"operation counter regressed: {ctr} after {self.gctr}")
            if ctr == 0 and last_user != INITIAL_OWNER:
                raise IntegrityError("initial state attributed to a user")
            try:
                outcome = derive_outcome(query, response.result, self._order)
            except ProofError as exc:
                raise IntegrityError(
                    f"verification object rejected: {exc}") from exc
        except IntegrityError as exc:
            if isinstance(exc, ServerBusyError):
                raise
            self._on_detection(exc, request)
            raise
        old_tag = hash_tagged_state(outcome.old_root, ctr, last_user)
        new_tag = hash_tagged_state(outcome.new_root, ctr + 1, self.user_id)
        self.sigma = self.sigma ^ old_tag ^ new_tag
        self.last = new_tag
        self.gctr = ctr + 1
        self.operations += 1
        self._record_quorum(ctr + 1, outcome.new_root, request)
        self._maybe_quorum_check()
        return outcome.answer

    # -- witness quorum -----------------------------------------------------

    def _record_quorum(self, ctr: int, new_root, request: Request) -> None:
        """Remember a verified op's expected lineage entry: the primary
        must have deposited exactly ``new_root`` at counter ``ctr``."""
        if self.quorum is None:
            return
        from repro.wire import encode

        self.quorum.record(
            ctr, new_root, request_frame=encode(request),
            response_frame=self._capture[-1] if self._capture else b"")

    def _maybe_quorum_check(self) -> None:
        """Every ``quorum_every`` verified ops, confirm the pending
        lineage against a random f+1 witness sample.  Counters no
        witness holds yet (replication lag) simply stay pending; a
        proven divergence raises :class:`ReplicationDivergence` out of
        the operation that triggered the check."""
        if self.quorum is None:
            return
        self._ops_since_quorum += 1
        if self._ops_since_quorum >= self._quorum_every:
            self._ops_since_quorum = 0
            self.quorum.check()

    def quorum_check(self, require_all: bool = False):
        """Confirm the recorded lineage now; see
        :meth:`~repro.net.replication.QuorumChecker.check`."""
        if self.quorum is None:
            return set()
        return self.quorum.check(require_all=require_all)

    def _on_detection(self, exc: IntegrityError, request: Request) -> None:
        """A verification failed: count it and, when an evidence
        directory is configured, capture a forensic bundle (the verbatim
        frames, the pre-operation registers, the anchor lineage) so the
        deviation is provable offline.  Sets ``exc.evidence_path``."""
        if _obs.enabled:
            _DETECTIONS.inc(user=self.user_id, protocol="II")
        if self._evidence_dir is None:
            return
        from repro.net import evidence
        from repro.wire import encode

        bundle = evidence.response_bundle(
            protocol="II", user_id=self.user_id, reason=str(exc),
            op_index=self.operations,
            order=StoreSpec.coerce(self._order).to_wire(),
            request_frame=encode(request),
            response_frame=self._capture[-1] if self._capture else b"",
            client_state={"sigma": self.sigma, "last": self.last,
                          "gctr": self.gctr, "seq": self._seq},
            anchor=evidence.anchor_lineage(self._initial_tag,
                                           self._anchor_path))
        os.makedirs(self._evidence_dir, exist_ok=True)
        path = os.path.join(self._evidence_dir,
                            f"{self.user_id}-{self._seq}.evidence")
        exc.evidence_path = evidence.write_bundle(path, bundle)

    # convenience verbs
    def get(self, key: bytes) -> bytes | None:
        return self.execute(ReadQuery(key))

    def put(self, key: bytes, value: bytes) -> None:
        self.execute(WriteQuery(key, value))

    def delete(self, key: bytes) -> None:
        self.execute(DeleteQuery(key))

    def scan(self, low: bytes, high: bytes):
        return self.execute(RangeQuery(low, high))

    def registers(self) -> dict:
        """This user's contribution to a sync check."""
        return {"sigma": self.sigma, "last": self.last}


class RemoteClientP1:
    """A Protocol I session over TCP: signed roots, blocking follow-up.

    Needs a signer (this user's key) and a verifier holding every
    user's public key (from the PKI); after each verified operation the
    client sends back ``sign_i(h(new_root || ctr + 1))``, unblocking
    the server for the next query.

    Carries the same socket timeouts as :class:`RemoteClient` so a hung
    server cannot park the session forever, but does *not* transparently
    reconnect: Protocol I's blocking follow-up makes a half-done
    operation visible to every other user, so the honest reaction to a
    lost connection is to surface it and let the operator re-establish
    the session deliberately.
    """

    def __init__(self, host: str, port: int, user_id: str,
                 signer, verifier, order: "int | StoreSpec" = 8,
                 connect_timeout: float = CONNECT_TIMEOUT_SECONDS,
                 op_timeout: float = OP_TIMEOUT_SECONDS,
                 evidence_dir: str | None = None,
                 quorum=None, quorum_every: int = 8) -> None:
        from repro.crypto.hashing import hash_state

        self._hash_state = hash_state
        self.user_id = user_id
        self._order = order
        self._signer = signer
        self._verifier = verifier
        self._evidence_dir = evidence_dir
        self._capture: list[bytes] = []
        self.lctr = 0
        self.gctr = 0
        self.quorum = quorum
        if quorum is not None:
            quorum.set_order(order)
        if quorum_every < 1:
            raise ValueError("quorum_every must be at least 1")
        self._quorum_every = quorum_every
        self._ops_since_quorum = 0
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(op_timeout)

    def close(self) -> None:
        self._sock.close()
        if self.quorum is not None:
            self.quorum.close()

    def __enter__(self) -> "RemoteClientP1":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def execute(self, query: Query) -> object:
        from repro.crypto.signatures import Signature
        from repro.protocols.base import Followup

        started = time.perf_counter_ns() if _obs.enabled else 0
        request = Request(query=query, extras={"user": self.user_id})
        self._capture.clear()
        try:
            send_message(self._sock, request)
            response = _expect_response(
                recv_message(self._sock, capture=self._capture))
        except (OSError, FramingError) as exc:
            raise TransientNetworkError(
                f"Protocol I operation failed in transit: {exc}") from exc
        try:
            try:
                ctr = int(response.extras["ctr"])
                last_user = response.extras["last_user"]
                signature = response.extras["sig"]
            except (KeyError, TypeError, ValueError) as exc:
                raise IntegrityError("malformed response") from exc
            if ctr < self.gctr:
                raise IntegrityError(
                    f"operation counter regressed: {ctr} after {self.gctr}")
            try:
                outcome = derive_outcome(query, response.result, self._order)
            except ProofError as exc:
                raise IntegrityError(
                    f"verification object rejected: {exc}") from exc
            expected = self._hash_state(outcome.old_root, ctr)
            if not isinstance(signature, Signature) or signature.signer_id != last_user \
                    or not self._verifier.verify(signature, expected):
                raise IntegrityError("illegitimate state signature")
        except IntegrityError as exc:
            if isinstance(exc, ServerBusyError):
                raise
            self._on_detection(exc, request)
            raise
        self.lctr += 1
        self.gctr = ctr + 1
        new_sig = self._signer.sign(self._hash_state(outcome.new_root, ctr + 1))
        send_message(self._sock, Followup(extras={"sig": new_sig, "user": self.user_id}))
        self._record_quorum(ctr + 1, outcome.new_root, request)
        self._maybe_quorum_check()
        if started:
            _CLIENT_OP_MS.observe(
                (time.perf_counter_ns() - started) / 1e6, user=self.user_id)
        return outcome.answer

    _record_quorum = RemoteClient._record_quorum
    _maybe_quorum_check = RemoteClient._maybe_quorum_check
    quorum_check = RemoteClient.quorum_check

    def _on_detection(self, exc: IntegrityError, request: Request) -> None:
        """Count the detection and capture a forensic bundle carrying
        the public-key directory, so the signature verdict is
        reproducible offline without the PKI."""
        if _obs.enabled:
            _DETECTIONS.inc(user=self.user_id, protocol="I")
        if self._evidence_dir is None:
            return
        from repro.net import evidence
        from repro.wire import encode

        bundle = evidence.response_bundle(
            protocol="I", user_id=self.user_id, reason=str(exc),
            op_index=self.lctr,
            order=StoreSpec.coerce(self._order).to_wire(),
            request_frame=encode(request),
            response_frame=self._capture[-1] if self._capture else b"",
            client_state={"lctr": self.lctr, "gctr": self.gctr},
            anchor=evidence.anchor_lineage(None, None),
            verifier_keys=evidence.key_directory(self._verifier))
        os.makedirs(self._evidence_dir, exist_ok=True)
        path = os.path.join(self._evidence_dir,
                            f"{self.user_id}-{self.lctr}.evidence")
        exc.evidence_path = evidence.write_bundle(path, bundle)

    def get(self, key: bytes) -> bytes | None:
        return self.execute(ReadQuery(key))

    def put(self, key: bytes, value: bytes) -> None:
        self.execute(WriteQuery(key, value))

    def counts(self) -> dict:
        """This user's contribution to the Protocol I count sync."""
        return {"lctr": self.lctr, "gctr": self.gctr}


def count_sync_check(counts: dict[str, dict]) -> bool:
    """Protocol I's predicate over exchanged counts: some user's gctr
    must equal the total of everyone's lctr."""
    total = sum(entry["lctr"] for entry in counts.values())
    operated = [entry for entry in counts.values() if entry["lctr"] > 0]
    if not operated:
        return total == 0
    return any(entry["gctr"] == total for entry in operated)


def sync_check(initial_root: Digest, registers: dict[str, dict]) -> bool:
    """The Protocol II predicate over all users' exchanged registers.

    True iff the server's behaviour is consistent with one serial
    history (Theorem 4.2); exchange the registers over any channel the
    server does not control.
    """
    initial_tag = initial_state_tag(initial_root)
    total = xor_all(entry["sigma"] for entry in registers.values())
    lasts = [entry["last"] for entry in registers.values() if entry["last"]]
    if not lasts:
        return total == Digest.zero()
    return any((initial_tag ^ last) == total for last in lasts)
