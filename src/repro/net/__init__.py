"""Socket deployment: the Trusted CVS server and verifying client over
TCP, speaking the binary wire format of :mod:`repro.wire`, with
crash-safe server recovery (:mod:`repro.net.wal`), self-healing clients,
a fault-injecting proxy (:mod:`repro.net.chaosproxy`) for chaos testing,
a Byzantine attack adapter (:mod:`repro.net.byzantine`) that aims the
simulator's malicious-server gallery at the wire path, forensic
evidence bundles (:mod:`repro.net.evidence`) for provable detections,
and N-server replicated root deposits (:mod:`repro.net.replication`)
that out-vote a forking primary through witness quorums."""

from repro.net.aserver import (
    AsyncServerHandle,
    AsyncTrustedCvsServer,
    serve_async_in_thread,
)
from repro.net.byzantine import WireAttack, WitnessCollusion
from repro.net.chaosproxy import ChaosConfig, ChaosProxy
from repro.net.client import (
    EndpointConnector,
    IntegrityError,
    RemoteClient,
    RemoteClientP1,
    ReplicationDivergence,
    RetryPolicy,
    ServerBusyError,
    TransientNetworkError,
    count_sync_check,
    sync_check,
)
from repro.net.replication import (
    QuorumChecker,
    Replicator,
    RootAttestation,
    RootDeposit,
    WitnessProtocol,
    attest,
    attestation_valid,
    deposit_valid,
    make_deposit,
    make_replica_keys,
)
from repro.net.core import DedupTable, ServerCore
from repro.net.evidence import EvidenceError, read_bundle, reverify, write_bundle
from repro.net.framing import FramingError, recv_message, send_message
from repro.net.pipeline import PipelinedRemoteClient, PipelinedRemoteClientP1
from repro.net.server import TrustedCvsTcpServer, serve_in_thread
from repro.net.wal import ServerStore, WalError

__all__ = [
    "AsyncServerHandle",
    "AsyncTrustedCvsServer",
    "serve_async_in_thread",
    "DedupTable",
    "ServerCore",
    "PipelinedRemoteClient",
    "PipelinedRemoteClientP1",
    "WireAttack",
    "WitnessCollusion",
    "ChaosConfig",
    "ChaosProxy",
    "QuorumChecker",
    "Replicator",
    "RootAttestation",
    "RootDeposit",
    "WitnessProtocol",
    "attest",
    "attestation_valid",
    "deposit_valid",
    "make_deposit",
    "make_replica_keys",
    "EndpointConnector",
    "ReplicationDivergence",
    "EvidenceError",
    "read_bundle",
    "reverify",
    "write_bundle",
    "IntegrityError",
    "RemoteClient",
    "RemoteClientP1",
    "RetryPolicy",
    "ServerBusyError",
    "TransientNetworkError",
    "count_sync_check",
    "sync_check",
    "FramingError",
    "recv_message",
    "send_message",
    "TrustedCvsTcpServer",
    "serve_in_thread",
    "ServerStore",
    "WalError",
]
