"""Socket deployment: the Trusted CVS server and verifying client over
TCP, speaking the binary wire format of :mod:`repro.wire`, with
crash-safe server recovery (:mod:`repro.net.wal`), self-healing clients,
and a fault-injecting proxy (:mod:`repro.net.chaosproxy`) for chaos
testing the whole stack."""

from repro.net.chaosproxy import ChaosConfig, ChaosProxy
from repro.net.client import (
    IntegrityError,
    RemoteClient,
    RemoteClientP1,
    RetryPolicy,
    ServerBusyError,
    TransientNetworkError,
    count_sync_check,
    sync_check,
)
from repro.net.framing import FramingError, recv_message, send_message
from repro.net.server import TrustedCvsTcpServer, serve_in_thread
from repro.net.wal import ServerStore, WalError

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "IntegrityError",
    "RemoteClient",
    "RemoteClientP1",
    "RetryPolicy",
    "ServerBusyError",
    "TransientNetworkError",
    "count_sync_check",
    "sync_check",
    "FramingError",
    "recv_message",
    "send_message",
    "TrustedCvsTcpServer",
    "serve_in_thread",
    "ServerStore",
    "WalError",
]
