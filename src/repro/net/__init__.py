"""Socket deployment: the Trusted CVS server and verifying client over
TCP, speaking the binary wire format of :mod:`repro.wire`."""

from repro.net.client import (
    IntegrityError,
    RemoteClient,
    RemoteClientP1,
    count_sync_check,
    sync_check,
)
from repro.net.framing import FramingError, recv_message, send_message
from repro.net.server import TrustedCvsTcpServer, serve_in_thread

__all__ = [
    "IntegrityError",
    "RemoteClient",
    "RemoteClientP1",
    "count_sync_check",
    "sync_check",
    "FramingError",
    "recv_message",
    "send_message",
    "TrustedCvsTcpServer",
    "serve_in_thread",
]
