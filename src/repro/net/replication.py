"""Replicated root deposits: out-vote a forking primary, name the deviant.

A single Trusted-CVS server can *fork* -- serve one client a diverging
history -- and the protocols only promise detection, at the price of a
rollback to the last verified state.  This module turns detection into
tolerance by replicating the primary's root lineage across ``2f + 1``
mutually untrusted *witness* servers:

* after every executed operation the primary signs a
  :class:`RootDeposit` -- ``sign_primary(h(primary, ctr, root))`` over
  the main branch's post-operation root -- and background sender
  threads (:class:`Replicator`) push it to every witness over the
  ordinary framed TCP wire;
* a witness is just another :class:`~repro.net.server.TrustedCvsTcpServer`
  (or async server) running :class:`WitnessProtocol`: it stores every
  validly-signed deposit in ``state.meta``, so deposits ride the
  witness's own hash-chained WAL and survive witness crashes, and it
  answers fetches with :class:`RootAttestation` -- the deposit
  countersigned under the witness's key;
* clients record each verified operation's expected ``(ctr, new_root)``
  and periodically confirm them against a **random quorum of f + 1
  witnesses** (:class:`QuorumChecker`), with per-witness
  timeout/retry/backoff.  Any sample of ``f + 1`` witnesses contains at
  least one honest one, so:

  - a *forking primary* is out-voted: the victim's VO-derived root
    disagrees with the primary-signed deposit the honest witness holds
    at the same counter -- the fork is proven (the deposit *is* the
    primary's signed confession) and every non-victim client keeps
    operating from the quorum-agreed lineage instead of halting;
  - a *minority of colluding witnesses* cannot equivocate: they cannot
    forge primary-signed deposits, so a fabricated attestation is a
    valid witness signature over an invalid deposit -- which names the
    witness.  The client writes evidence, excludes it, and re-samples.

Attribution is explicit and offline-checkable.  Every divergence
produces an upgraded evidence bundle (``kind="replication"``) naming
the deviating replica:

``primary-fork``
    a valid primary-signed deposit whose root contradicts the VO-derived
    root the client itself verified at that counter;
``primary-equivocation``
    two valid primary-signed deposits at one counter with different
    roots (a double-signing primary, possibly laundered through
    colluding witnesses);
``witness-fabrication``
    a valid *witness* signature over a deposit the primary never signed.

Transport noise is never an accusation: an unreachable witness or a
frame that fails the witness-signature check is retried/excluded from
the sample without writing evidence -- zero false positives under the
chaos proxy is a campaign gate (``benchmarks/bench_byzantine.py
--replicas N``).

Import discipline: :mod:`repro.wire` imports the two message
dataclasses from here, so this module keeps its module-level imports
codec-free (digests are computed from hand-packed bytes, and the
framing/client/evidence imports happen inside the classes that need
them).
"""

from __future__ import annotations

import os
import queue
import random
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.crypto.hashing import Digest, hash_bytes
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import Request, Response, ServerProtocol, ServerState

#: default identity of the operation-serving server in a replica group.
PRIMARY_ID = "primary"

#: ``extras`` keys of the replication control messages (they ride plain
#: :class:`Request`/:class:`Response` envelopes over the existing wire).
DEPOSIT_KEY = "repl.deposit"      # request: list[RootDeposit] to store
FETCH_KEY = "repl.fetch"          # request: list[int] ctrs to attest
ATTEST_KEY = "repl.attest"        # response: {ctr: RootAttestation | None}
HEAD_KEY = "repl.head"            # response: highest deposited ctr (-1 none)

#: the pseudo-user replication traffic runs under on the wire.
REPL_USER = "!repl"

#: ``state.meta`` keys of the witness store (WAL-replayed, snapshotted).
META_DEPOSITS = "repl.deposits"
META_CONFLICTS = "repl.conflicts"

_DEPOSITS = _registry.counter(
    "repl.deposits", "signed root deposits created (primary) / stored (witness)")
_QUORUM_CHECKS = _registry.counter(
    "repl.quorum_checks", "client quorum confirmations against f+1 witnesses")
_DIVERGENCES = _registry.counter(
    "repl.divergences", "cross-replica divergences proven, by deviant replica")


class ReplicationError(Exception):
    """Misuse of the replication layer (bad configuration, bad sizes)."""


# -- signed messages -------------------------------------------------------

def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(">I", len(raw)) + raw


def deposit_digest(primary_id: str, ctr: int, root: Digest) -> Digest:
    """The digest a primary signs to deposit ``root`` at counter ``ctr``.

    Domain-separated and length-prefixed by hand (not via the wire
    codec) so the signature's meaning is independent of codec details
    and this module stays importable from :mod:`repro.wire`.
    """
    return hash_bytes(b"cvs-root-deposit\x00" + _pack_str(primary_id)
                      + struct.pack(">q", ctr) + root.value)


def attestation_digest(witness_id: str, deposit: "RootDeposit") -> Digest:
    """The digest a witness signs to attest it holds ``deposit``."""
    return hash_bytes(b"cvs-root-attest\x00" + _pack_str(witness_id)
                      + deposit.digest().value)


@dataclass(frozen=True)
class RootDeposit:
    """One primary-signed root lineage entry: ``(ctr, root)``.

    ``ctr`` is the main branch's operation counter *after* the op, so
    the deposit at ``c`` is directly comparable to the ``new_root`` a
    client derives from the VO of the operation that advanced it to
    ``c``.  The signature covers :func:`deposit_digest`; per-counter
    uniqueness of an honest lineage is exactly what equivocation
    detection checks.
    """

    primary_id: str
    ctr: int
    root: Digest
    signature: Signature

    def digest(self) -> Digest:
        return deposit_digest(self.primary_id, self.ctr, self.root)


@dataclass(frozen=True)
class RootAttestation:
    """A deposit countersigned by the witness that stored it."""

    witness_id: str
    deposit: RootDeposit
    signature: Signature

    def digest(self) -> Digest:
        return attestation_digest(self.witness_id, self.deposit)


def make_deposit(signer: Signer, ctr: int, root: Digest) -> RootDeposit:
    return RootDeposit(
        primary_id=signer.signer_id, ctr=ctr, root=root,
        signature=signer.sign(deposit_digest(signer.signer_id, ctr, root)))


def deposit_valid(deposit: RootDeposit, verifier: Verifier) -> bool:
    """True iff ``deposit`` really was signed by its named primary."""
    if not isinstance(deposit.signature, Signature):
        return False
    if deposit.signature.signer_id != deposit.primary_id:
        return False
    return verifier.verify(deposit.signature, deposit.digest())


def attest(signer: Signer, deposit: RootDeposit) -> RootAttestation:
    return RootAttestation(
        witness_id=signer.signer_id, deposit=deposit,
        signature=signer.sign(attestation_digest(signer.signer_id, deposit)))


def attestation_valid(attestation: RootAttestation,
                      verifier: Verifier) -> bool:
    """True iff the *witness* signature checks out.  Says nothing about
    the deposit inside -- that is a separate, separately-attributed
    check (:func:`deposit_valid`)."""
    if not isinstance(attestation.deposit, RootDeposit):
        return False
    if not isinstance(attestation.signature, Signature):
        return False
    if attestation.signature.signer_id != attestation.witness_id:
        return False
    return verifier.verify(attestation.signature, attestation.digest())


# -- deployment keys -------------------------------------------------------

def witness_name(index: int) -> str:
    return f"w{index}"


@dataclass
class ReplicaKeys:
    """The key material of one N-server deployment: a primary signer,
    one signer per witness, and a verifier holding every public key."""

    primary: Signer
    witnesses: list[Signer]
    verifier: Verifier

    @property
    def n(self) -> int:
        return len(self.witnesses)

    @property
    def f(self) -> int:
        """Faults tolerated: with ``n = 2f + 1`` witnesses, ``f`` may
        collude (or be down) and a quorum of ``f + 1`` still contains an
        honest one."""
        return (len(self.witnesses) - 1) // 2


def make_replica_keys(n_witnesses: int, seed: int,
                      primary_id: str = PRIMARY_ID,
                      bits: int | None = None) -> ReplicaKeys:
    """Deterministic demo PKI for an N-server deployment.

    Seeded key generation hits the process-wide keypair cache, so
    harnesses can rebuild the same group cheaply.  A real deployment
    would distribute these through an actual PKI; the protocols only
    need every party to know every public key.
    """
    from repro.crypto import rsa

    bits = bits or rsa.DEFAULT_KEY_BITS
    if n_witnesses < 1:
        raise ReplicationError("a replica group needs at least one witness")
    primary = Signer.generate(primary_id, bits=bits, seed=seed)
    witnesses = [
        Signer.generate(witness_name(i), bits=bits, seed=seed + 1 + i)
        for i in range(n_witnesses)
    ]
    verifier = Verifier({s.signer_id: s.public_key
                         for s in [primary, *witnesses]})
    return ReplicaKeys(primary=primary, witnesses=witnesses,
                       verifier=verifier)


# -- the witness server protocol -------------------------------------------

class WitnessProtocol(ServerProtocol):
    """The server half of a witness: store deposits, answer attestations.

    Runs behind either TCP server exactly like the Trusted-CVS
    protocols do.  Deposits arrive as ordinary requests (``query=None``,
    ``extras[DEPOSIT_KEY]``), so the hosting server's WAL logs them
    *before* execution and crash replay rebuilds the deposit store
    bit-for-bit; snapshots serialise it with the rest of ``state.meta``.

    A witness is untrusted too: it validates the primary signature on
    every deposit it stores (garbage is counted and dropped, never
    stored), keeps the *first* validly-signed deposit per counter, and
    remembers later conflicting ones in ``META_CONFLICTS`` -- a
    double-signing primary leaves its confession on every honest
    witness it reaches.

    ``collusion`` (a :class:`~repro.net.byzantine.WitnessCollusion`)
    makes this witness Byzantine for harnesses: ``"fabricate"`` serves
    attestations over doctored deposits (valid witness signature,
    invalid primary signature -- the strongest lie a witness can tell
    without the primary's key), ``"withhold"`` denies having anything.
    """

    responses_commit_state = False
    blocks_after_request = False

    def __init__(self, witness_id: str, signer: Signer, verifier: Verifier,
                 primary_id: str = PRIMARY_ID, collusion=None) -> None:
        if signer.signer_id != witness_id:
            raise ReplicationError(
                f"witness {witness_id!r} handed {signer.signer_id!r}'s key")
        self.witness_id = witness_id
        self.primary_id = primary_id
        self.collusion = collusion
        self._signer = signer
        self._verifier = verifier
        #: attestations are derived (witness-signed) data, not state:
        #: cached per (ctr, deposit digest), rebuilt lazily after replay.
        self._attestations: dict[tuple[int, Digest], RootAttestation] = {}
        self.rejected = 0

    def initialize(self, state: ServerState) -> None:
        state.meta.setdefault(META_DEPOSITS, {})
        state.meta.setdefault(META_CONFLICTS, [])

    def handle_request(self, user_id: str, request: Request,
                       state: ServerState, round_no: int) -> Response:
        state.ctr += 1
        deposits = request.extras.get(DEPOSIT_KEY)
        if deposits is not None:
            return self._store_deposits(deposits, state)
        fetch = request.extras.get(FETCH_KEY)
        if fetch is not None:
            return self._attest(fetch, state, user_id)
        return Response(result=None, extras={
            "error": "witness serves only deposit/fetch requests"})

    # -- deposit ingestion --------------------------------------------------

    def _store_deposits(self, deposits, state: ServerState) -> Response:
        store = state.meta[META_DEPOSITS]
        stored = rejected = 0
        for deposit in deposits if isinstance(deposits, (list, tuple)) else []:
            if (not isinstance(deposit, RootDeposit)
                    or deposit.primary_id != self.primary_id
                    or not deposit_valid(deposit, self._verifier)):
                rejected += 1
                continue
            existing = store.get(deposit.ctr)
            if existing is None:
                store[deposit.ctr] = deposit
                stored += 1
                if _obs.enabled:
                    _DEPOSITS.inc(role="witness", witness=self.witness_id)
            elif existing.digest() != deposit.digest():
                # Two valid primary signatures over one counter: keep the
                # first lineage, preserve the conflicting confession.
                state.meta[META_CONFLICTS].append(deposit)
        self.rejected += rejected
        return Response(result=None, extras={
            HEAD_KEY: max(store) if store else -1,
            "stored": stored, "rejected": rejected})

    # -- attestation --------------------------------------------------------

    def _attest(self, fetch, state: ServerState, user_id: str) -> Response:
        store = state.meta[META_DEPOSITS]
        head = max(store) if store else -1
        mode = getattr(self.collusion, "mode", None)
        attestations: dict[int, RootAttestation | None] = {}
        for ctr in fetch if isinstance(fetch, (list, tuple)) else []:
            deposit = store.get(ctr) if isinstance(ctr, int) else None
            if deposit is None:
                attestations[ctr] = None
                continue
            if mode == "withhold":
                self.collusion.served += 1
                attestations[ctr] = None
                continue
            if mode == "fabricate":
                self.collusion.served += 1
                attestations[ctr] = self._fabricate(deposit, user_id)
                continue
            attestations[ctr] = self._attestation_for(deposit)
        if mode == "withhold":
            head = -1
        return Response(result=None, extras={
            ATTEST_KEY: attestations, HEAD_KEY: head})

    def _attestation_for(self, deposit: RootDeposit) -> RootAttestation:
        key = (deposit.ctr, deposit.digest())
        attestation = self._attestations.get(key)
        if attestation is None:
            attestation = attest(self._signer, deposit)
            self._attestations[key] = attestation
        return attestation

    def _fabricate(self, deposit: RootDeposit,
                   user_id: str) -> RootAttestation:
        """The strongest equivocation a keyless-of-the-primary witness
        can mount: a doctored deposit (root flipped, the genuine primary
        signature copied over -- now invalid) under a *valid* witness
        signature.  Detection of exactly this shape is what pins the
        blame on the witness rather than the primary."""
        fake_root = Digest(bytes(b ^ 0xA5 for b in deposit.root.value))
        fake = RootDeposit(primary_id=deposit.primary_id, ctr=deposit.ctr,
                           root=fake_root, signature=deposit.signature)
        if _obs.enabled:
            from repro.net.byzantine import _ATTACKS_INJECTED
            _ATTACKS_INJECTED.inc(
                attack=f"witness-{self.collusion.mode}", user=user_id)
        return self._attestation_for(fake)


# -- the primary-side replicator -------------------------------------------

class Replicator:
    """Pushes the primary's signed root lineage to every witness.

    Attached to a :class:`~repro.net.core.ServerCore`; the core calls
    :meth:`observe` (from whichever thread/task serialises it) after
    every executed request.  When the **main** branch's counter
    advanced, a deposit over its current root is signed and fanned out
    to one background sender thread per witness.  Senders batch queued
    deposits into single requests, reconnect with capped backoff, and
    keep undelivered deposits pending across reconnects -- the witness
    store is idempotent, so redelivery is always safe.

    A *forking* primary deposits only its public (main) lineage -- the
    forked branches it serves to victims are precisely what never
    reaches the witnesses, which is what the client quorum check
    exposes.
    """

    def __init__(self, signer: Signer,
                 witnesses: list[tuple[str, int]],
                 connect_timeout: float = 5.0,
                 op_timeout: float = 10.0,
                 max_backoff: float = 1.0) -> None:
        if not witnesses:
            raise ReplicationError("replicator needs at least one witness")
        self._signer = signer
        self._endpoints = [tuple(endpoint) for endpoint in witnesses]
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._max_backoff = max_backoff
        self._last_ctr: int | None = None
        self.deposits_created = 0
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._enqueued = [0] * len(self._endpoints)
        self._delivered = [0] * len(self._endpoints)
        self._stop = threading.Event()
        self._queues: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in self._endpoints]
        self._threads = [
            threading.Thread(target=self._sender, args=(i,), daemon=True,
                             name=f"repl-sender-{i}")
            for i in range(len(self._endpoints))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def primary_id(self) -> str:
        return self._signer.signer_id

    # -- core-facing hooks --------------------------------------------------

    def prime(self, core) -> None:
        """Attach to a core after construction/recovery: adopt its
        current main counter and (re-)deposit the recovered head so a
        restarted primary's witnesses catch up to the live root.
        Intermediate roots lost to a crash stay whatever the witnesses
        already hold -- deposits are WAL-crash-safe on *their* side."""
        state = core.states["main"]
        self._last_ctr = state.ctr
        if state.ctr > 0:
            self._enqueue(make_deposit(self._signer, state.ctr,
                                       state.database.root_digest()))

    def observe(self, core) -> None:
        """Called after each executed request: deposit the main branch's
        new ``(ctr, root)`` if it advanced.  ``root_digest()`` is a
        lazy dirty-path recompute, so this costs one op's hashing."""
        state = core.states["main"]
        if self._last_ctr is not None and state.ctr <= self._last_ctr:
            return
        self._last_ctr = state.ctr
        self._enqueue(make_deposit(self._signer, state.ctr,
                                   state.database.root_digest()))

    def _enqueue(self, deposit: RootDeposit) -> None:
        self.deposits_created += 1
        if _obs.enabled:
            _DEPOSITS.inc(role="primary")
        with self._lock:
            for index, q in enumerate(self._queues):
                self._enqueued[index] += 1
                q.put(deposit)

    # -- delivery -----------------------------------------------------------

    def _sender(self, index: int) -> None:
        from repro.net.framing import FramingError, recv_message, send_message
        from repro.wire import WireError

        endpoint = self._endpoints[index]
        q = self._queues[index]
        pending: deque[RootDeposit] = deque()
        sock: socket.socket | None = None
        failures = 0
        while not self._stop.is_set():
            if not pending:
                deposit = q.get()
                if deposit is None:
                    break
                pending.append(deposit)
            drained = False
            while not drained:
                try:
                    deposit = q.get_nowait()
                except queue.Empty:
                    drained = True
                    continue
                if deposit is None:
                    self._stop.set()
                    break
                pending.append(deposit)
            batch = list(pending)
            try:
                if sock is None:
                    sock = socket.create_connection(
                        endpoint, timeout=self._connect_timeout)
                    sock.settimeout(self._op_timeout)
                send_message(sock, Request(query=None, extras={
                    "user": REPL_USER, DEPOSIT_KEY: batch}))
                reply = recv_message(sock)
                if reply is None:
                    raise FramingError("witness closed the connection")
            except (OSError, FramingError, WireError):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    sock = None
                failures += 1
                delay = min(self._max_backoff, 0.02 * (2 ** min(failures, 8)))
                if self._stop.wait(delay):
                    break
                continue
            failures = 0
            for _ in batch:
                pending.popleft()
            with self._lock:
                self._delivered[index] += len(batch)
                self._done.notify_all()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until every witness acknowledged every deposit created
        so far, or ``timeout``; False means some witness is behind
        (down, partitioned) -- a liveness condition, not an integrity
        one."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while any(self._delivered[i] < self._enqueued[i]
                      for i in range(len(self._endpoints))):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._done.wait(remaining)
        return True

    def close(self) -> None:
        self._stop.set()
        for q in self._queues:
            q.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)


# -- the client-side quorum checker -----------------------------------------

@dataclass
class _PendingRoot:
    """One verified-but-unconfirmed operation awaiting its quorum vote."""

    root: Digest
    request_frame: bytes
    response_frame: bytes


class QuorumChecker:
    """Confirms a client's verified root lineage against f+1 witnesses.

    The owning client records each verified operation
    (:meth:`record`: the post-operation counter, the VO-derived new
    root, and the verbatim frames for evidence) and calls :meth:`check`
    periodically.  A check samples a random quorum of ``f + 1``
    non-excluded witnesses, fetches attestations for every pending
    counter with per-witness timeout/retry/backoff, and classifies each
    vote:

    * transport failure / invalid witness signature -> retry, then swap
      in a replacement witness (noise, never an accusation);
    * valid witness signature over an invalid deposit -> the witness is
      the deviant: evidence is written, the witness is excluded, the
      client carries on (this is the out-vote: a lying minority costs
      nothing but a re-sample);
    * two valid deposits at one counter with different roots ->
      ``primary-equivocation``: raise (with evidence);
    * a valid deposit whose root contradicts the client's own VO-derived
      root -> ``primary-fork``: raise (with evidence);
    * a valid deposit matching the client's root -> confirmed.

    A counter no sampled witness has a deposit for yet is *lag*, not
    divergence: it stays pending for the next check.  With
    ``require_all=True`` (end of a session) the check retries with
    backoff until everything pending resolves or the budget ends in
    :class:`~repro.net.client.TransientNetworkError`.
    """

    def __init__(self, witnesses, verifier: Verifier, f: int,
                 primary_id: str = PRIMARY_ID,
                 user_id: str = "anonymous",
                 seed: int | None = None,
                 connect_timeout: float = 5.0,
                 op_timeout: float = 10.0,
                 retry=None,
                 evidence_dir: str | None = None,
                 order: "int | dict" = 8) -> None:
        from repro.net.client import RetryPolicy

        self._witnesses = [(wid, tuple(endpoint)) for wid, endpoint in witnesses]
        if f < 0 or f + 1 > len(self._witnesses):
            raise ReplicationError(
                f"cannot sample f+1={f + 1} of {len(self._witnesses)} witnesses")
        self._verifier = verifier
        self.f = f
        self.primary_id = primary_id
        self.user_id = user_id
        self._rng = random.Random(seed)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._retry = retry or RetryPolicy(seed=seed)
        self._evidence_dir = evidence_dir
        self._order = 8
        self.set_order(order)
        self._conns: dict[str, socket.socket] = {}
        self._pending: dict[int, _PendingRoot] = {}
        self.excluded: set[str] = set()
        self.detections: list[dict] = []
        self.checks = 0
        self.confirmed = 0

    def set_order(self, order) -> None:
        """Adopt the owning session's store spec, wire-normalised --
        evidence bundles must re-derive VOs under the same geometry the
        client verified them with.  The attaching client calls this."""
        from repro.mtree.forest import StoreSpec

        self._order = StoreSpec.coerce(order).to_wire()

    @property
    def quorum(self) -> int:
        return self.f + 1

    @property
    def pending(self) -> int:
        return len(self._pending)

    def record(self, ctr: int, root: Digest, request_frame: bytes = b"",
               response_frame: bytes = b"") -> None:
        """Remember a verified operation's expected lineage entry."""
        self._pending[ctr] = _PendingRoot(
            root=root, request_frame=request_frame,
            response_frame=response_frame)

    # -- the check ----------------------------------------------------------

    def check(self, require_all: bool = False) -> set[int]:
        """One quorum confirmation pass; returns the counters confirmed.

        Raises :class:`~repro.net.client.ReplicationDivergence` on a
        proven primary fork/equivocation (after writing evidence) and
        :class:`~repro.net.client.TransientNetworkError` when
        ``require_all`` is set but the pending lineage could not be
        resolved within the retry budget.
        """
        from repro.net.client import TransientNetworkError

        if not self._pending:
            return set()
        self.checks += 1
        if _obs.enabled:
            _QUORUM_CHECKS.inc(user=self.user_id)
        confirmed: set[int] = set()
        rounds = self._retry.attempts if require_all else 1
        last_problem = "no witness holds the pending deposits yet"
        for round_no in range(rounds):
            if round_no and self._pending:
                time.sleep(self._retry.delay(round_no - 1))
            if not self._pending:
                break
            votes, responded = self._collect(sorted(self._pending))
            if responded < self.quorum:
                last_problem = (f"only {responded} of the required "
                                f"{self.quorum} witnesses answered")
            confirmed |= self._evaluate(votes)
            if not self._pending:
                break
        if require_all and self._pending:
            raise TransientNetworkError(
                f"could not confirm root lineage at counter(s) "
                f"{sorted(self._pending)} against a witness quorum: "
                f"{last_problem}")
        return confirmed

    def _collect(self, ctrs: list[int]):
        """Fetch attestations for ``ctrs`` from a random quorum sample,
        swapping in replacement witnesses for unreachable (or proven
        deviant) ones until f+1 responded or the pool ran dry."""
        available = [w for w in self._witnesses if w[0] not in self.excluded]
        self._rng.shuffle(available)
        votes: dict[int, list[RootAttestation]] = {c: [] for c in ctrs}
        responded = 0
        for wid, endpoint in available:
            if responded >= self.quorum:
                break
            attestations = self._fetch(wid, endpoint, ctrs)
            if attestations is None:
                continue  # unreachable/garbled past the retry budget
            if self._absorb(wid, attestations, votes):
                responded += 1
        return votes, responded

    def _fetch(self, wid: str, endpoint, ctrs) -> dict | None:
        """One witness's attestation map, with per-witness
        timeout/retry/backoff; ``None`` when the budget runs out."""
        from repro.net.framing import FramingError, recv_message, send_message
        from repro.wire import WireError

        policy = self._retry
        for attempt in range(policy.attempts):
            sock = self._conns.get(wid)
            try:
                if sock is None:
                    sock = socket.create_connection(
                        endpoint, timeout=self._connect_timeout)
                    sock.settimeout(self._op_timeout)
                    self._conns[wid] = sock
                send_message(sock, Request(query=None, extras={
                    "user": f"{REPL_USER}:{self.user_id}",
                    FETCH_KEY: list(ctrs)}))
                reply = recv_message(sock)
                if reply is None:
                    raise FramingError("witness closed the connection")
                attestations = getattr(reply, "extras", {}).get(ATTEST_KEY) \
                    if isinstance(getattr(reply, "extras", None), dict) else None
                if not isinstance(attestations, dict):
                    raise FramingError("witness reply carries no attestations")
                return attestations
            except (OSError, FramingError, WireError):
                stale = self._conns.pop(wid, None)
                if stale is not None:
                    try:
                        stale.close()
                    except OSError:
                        pass
                if attempt + 1 < policy.attempts:
                    time.sleep(policy.delay(attempt))
        return None

    def _absorb(self, wid: str, attestations: dict, votes: dict) -> bool:
        """Validate one witness's attestations into ``votes``.

        Returns False when the witness should not count towards the
        quorum: its signature did not verify (transport-grade garbage)
        or it was just proven a fabricating deviant (excluded)."""
        accepted: dict[int, RootAttestation] = {}
        for ctr in votes:
            attestation = attestations.get(ctr)
            if attestation is None:
                continue
            if (not isinstance(attestation, RootAttestation)
                    or attestation.witness_id != wid
                    or not attestation_valid(attestation, self._verifier)):
                # Without a valid witness signature nothing is provable
                # about anyone: treat the reply as line noise.
                return False
            deposit = attestation.deposit
            if (deposit.ctr != ctr
                    or deposit.primary_id != self.primary_id
                    or not deposit_valid(deposit, self._verifier)):
                # A valid witness signature over a deposit the primary
                # never signed: the witness is the deviant, provably.
                self._detect_witness(wid, ctr, attestation)
                return False
            accepted[ctr] = attestation
        for ctr, attestation in accepted.items():
            votes[ctr].append(attestation)
        return True

    def _evaluate(self, votes: dict) -> set[int]:
        confirmed: set[int] = set()
        for ctr, vlist in votes.items():
            if not vlist or ctr not in self._pending:
                continue
            by_digest: dict[Digest, RootAttestation] = {}
            for attestation in vlist:
                by_digest.setdefault(attestation.deposit.digest(), attestation)
            if len(by_digest) > 1:
                first, second, *_ = by_digest.values()
                self._raise_primary(
                    "primary-equivocation", ctr,
                    f"primary signed {len(by_digest)} different roots at "
                    f"counter {ctr}", [first, second])
            attestation = vlist[0]
            expected = self._pending[ctr]
            if attestation.deposit.root != expected.root:
                self._raise_primary(
                    "primary-fork", ctr,
                    f"quorum-agreed deposit at counter {ctr} carries root "
                    f"{attestation.deposit.root.short()}… but this client "
                    f"verified {expected.root.short()}…: the primary served "
                    "this client a forked history", [attestation])
            del self._pending[ctr]
            self.confirmed += 1
            confirmed.add(ctr)
        return confirmed

    # -- detections ---------------------------------------------------------

    def _bundle_path(self, tag: str) -> str | None:
        if self._evidence_dir is None:
            return None
        os.makedirs(self._evidence_dir, exist_ok=True)
        return os.path.join(self._evidence_dir,
                            f"{self.user_id}-repl-{tag}.evidence")

    def _detect_witness(self, wid: str, ctr: int,
                        attestation: RootAttestation) -> None:
        """Name a fabricating witness, write evidence, out-vote it."""
        from repro.net import evidence
        from repro.wire import encode

        self.excluded.add(wid)
        if _obs.enabled:
            _DIVERGENCES.inc(deviant=wid, user=self.user_id)
        path = self._bundle_path(f"{wid}-{ctr}")
        if path is not None:
            bundle = evidence.replication_bundle(
                mode="witness-fabrication", deviant=wid,
                user_id=self.user_id, ctr=ctr,
                reason=(f"witness {wid} attested a deposit the primary "
                        f"never signed at counter {ctr}"),
                attestations=[encode(attestation)],
                order=self._order,
                verifier_keys=evidence.key_directory(self._verifier))
            path = evidence.write_bundle(path, bundle)
        self.detections.append({
            "deviant": wid, "mode": "witness-fabrication", "ctr": ctr,
            "evidence_path": path})

    def _raise_primary(self, mode: str, ctr: int, reason: str,
                       attestations: list[RootAttestation]) -> None:
        from repro.net import evidence
        from repro.net.client import ReplicationDivergence
        from repro.wire import encode

        if _obs.enabled:
            _DIVERGENCES.inc(deviant=self.primary_id, user=self.user_id)
        expected = self._pending.get(ctr)
        path = self._bundle_path(f"{mode}-{ctr}")
        if path is not None:
            bundle = evidence.replication_bundle(
                mode=mode, deviant=self.primary_id, user_id=self.user_id,
                ctr=ctr, reason=reason,
                attestations=[encode(a) for a in attestations],
                expected_root=expected.root if expected else None,
                request_frame=expected.request_frame if expected else b"",
                response_frame=expected.response_frame if expected else b"",
                order=self._order,
                verifier_keys=evidence.key_directory(self._verifier))
            path = evidence.write_bundle(path, bundle)
        self.detections.append({
            "deviant": self.primary_id, "mode": mode, "ctr": ctr,
            "evidence_path": path})
        error = ReplicationDivergence(reason, deviant=self.primary_id,
                                      evidence_path=path)
        raise error

    def close(self) -> None:
        for sock in self._conns.values():
            try:
                sock.close()
            except OSError:
                pass
        self._conns.clear()
