"""Pipelined verifying clients: up to W in-flight operations per user.

A stop-and-wait client pays one full round trip per operation.  Since
every operation carries an idempotent request id (``user:nonce:seq``)
and the server answers each connection's requests in order, a client
can safely keep a *window* of W operations in flight: submit W
requests back to back, then match responses to requests by their
echoed rid and verify each one exactly as the stop-and-wait path does.
Nothing about verification weakens -- every response still carries its
own VO, counter, and attribution, and the register algebra (Protocol
II) or signature chain (Protocol I) is updated per operation in order.

Crash recovery (Protocol II): when the connection drops mid-window the
client reconnects and resends *every* in-flight request verbatim.  The
server's windowed dedup table answers the already-executed ones from
its memory and executes the rest, so the pipeline resumes with
exactly-once application -- this is why the server's dedup window must
be at least as deep as the client's pipeline.

Protocol I batching: the async server turns a run of W pipelined
requests from one user into a *signing run* -- only the last response
carries ``batch_final=True``.  The client verifies the run's first
response against the server-presented RSA signature (the newest signed
root) and each subsequent response by *hash-chain membership*: its
VO-derived old root must equal the previous operation's derived new
root with a contiguous counter.  It signs once, over the batch-final
root, so RSA work drops from one sign + one verify per operation to at
most one of each per batch -- while a tampered operation anywhere in
the run still breaks either its VO or the root chain and is detected
immediately.
"""

from __future__ import annotations

import os
import time
from collections import deque

from repro.crypto.hashing import Digest
from repro.mtree.database import Query
from repro.mtree.proofs import ProofError
from repro.net.client import (
    IntegrityError,
    RemoteClient,
    RemoteClientP1,
    ServerBusyError,
    TransientNetworkError,
    _expect_response,
)
from repro.net.framing import FramingError, recv_message, send_message
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import Followup, Request
from repro.protocols.verify import derive_outcome
from repro.wire import WireError

#: default pipeline window; the server's dedup window (256) must stay
#: comfortably above whatever is used here.
DEFAULT_WINDOW = 16

_RESENDS = _registry.counter(
    "net.pipeline_resends", "in-flight requests resent after a reconnect")
_WINDOW_FULL = _registry.counter(
    "net.pipeline_window_full", "submissions that had to drain a slot first")


class PipelinedRemoteClient(RemoteClient):
    """A Protocol II session keeping up to ``window`` operations in flight.

    ``submit(query)`` queues an operation (draining the oldest in-flight
    one first if the window is full) and returns any answers that
    completed as a side effect; ``drain()`` completes everything still
    in flight.  ``execute()`` degrades to submit-and-drain, so the
    convenience verbs (``get``/``put``/...) still work stop-and-wait.
    """

    def __init__(self, *args, window: int = DEFAULT_WINDOW, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if window < 1:
            raise ValueError("pipeline window must be at least 1")
        self.window = window
        self._inflight: deque[tuple[Query, Request]] = deque()

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def submit(self, query: Query) -> list:
        """Queue one operation; returns answers completed on the way.

        Blocks only when the window is full (drains the oldest slot) or
        the transport needs recovery.
        """
        drained = []
        while len(self._inflight) >= self.window:
            if _obs.enabled:
                _WINDOW_FULL.inc(user=self.user_id)
            drained.append(self._drain_one())
        request = Request(query=query, extras={
            "user": self.user_id, "rid": self._rid(self._seq)})
        self._seq += 1
        self._inflight.append((query, request))
        if self._sock is None:
            self._recover_connection()
        else:
            try:
                send_message(self._sock, request)
            except OSError:
                self._drop_connection()
                self._recover_connection()
        return drained

    def drain(self) -> list:
        """Complete (and verify) every in-flight operation, in order."""
        answers = []
        while self._inflight:
            answers.append(self._drain_one())
        return answers

    def execute(self, query: Query) -> object:
        """Stop-and-wait compatibility: submit, then drain everything."""
        answers = self.submit(query)
        answers.extend(self.drain())
        return answers[-1]

    def _drain_one(self) -> object:
        policy = self._retry
        failures = 0
        while True:
            try:
                if self._sock is None:
                    self._recover_connection()
                self._capture.clear()
                message = recv_message(self._sock, capture=self._capture)
                if message is None:
                    raise FramingError("server closed the connection")
                break
            except (OSError, FramingError, WireError) as exc:
                self._drop_connection()
                failures += 1
                if failures >= policy.attempts:
                    raise TransientNetworkError(
                        f"pipelined operation failed after {failures} "
                        f"connection failure(s): {exc}") from exc
                time.sleep(policy.delay(failures - 1))
        response = _expect_response(message)
        query, request = self._inflight.popleft()
        echoed = response.extras.get("rid")
        if echoed is not None and echoed != request.extras["rid"]:
            exc = IntegrityError(
                f"response names request id {echoed!r} but the oldest "
                f"in-flight operation is {request.extras['rid']!r}: the "
                "server reordered or dropped operations within one "
                "connection")
            self._on_detection(exc, request)
            raise exc
        answer = self._absorb(query, request, response)
        if self._anchor_path is not None:
            self.save_anchor()
        return answer

    def _recover_connection(self) -> None:
        """Reconnect and resend every in-flight request verbatim.

        Any of them may or may not have executed before the connection
        died; identical rids make the resend idempotent (the server's
        windowed dedup answers executed ones from memory), so the whole
        window is re-answered in order on the new connection.  Raises
        ``TransientNetworkError`` when the retry budget runs out.
        """
        policy = self._retry
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            try:
                self._connect()
                for _query, request in self._inflight:
                    send_message(self._sock, request)
                    if _obs.enabled:
                        _RESENDS.inc(user=self.user_id)
                return
            except OSError as exc:
                last_error = exc
                self._drop_connection()
                if attempt + 1 < policy.attempts:
                    time.sleep(policy.delay(attempt))
        raise TransientNetworkError(
            f"could not recover the pipelined connection after "
            f"{policy.attempts} attempt(s): {last_error}") from last_error

    def close(self) -> None:
        # Draining on close would mask errors; callers drain explicitly.
        super().close()


class PipelinedRemoteClientP1(RemoteClientP1):
    """A Protocol I session with batched signature verification.

    The async server answers a window of W requests as one signing run:
    intermediate responses carry ``batch_final=False`` and the stored
    (stale) head signature; only the final one demands the client's
    follow-up signature.  Verification per response:

    * *batch head* (first response after this client sent -- or
      bootstrap-deposited -- a signature): full RSA verification of the
      presented signature over ``h(old_root || ctr)``;
    * *inside a run*: hash-chain membership -- the VO-derived old root
      must equal the previous operation's derived new root, with
      ``ctr`` advancing by exactly one.

    Every operation's VO is still independently verified, so a tampered
    answer or root anywhere in the run raises
    :class:`~repro.net.client.IntegrityError` (with an evidence bundle
    when configured) exactly as the unbatched client would.
    ``followups_sent`` counts signatures produced: against the batching
    server it is ~operations/W instead of ``operations``.

    No transparent reconnect, matching :class:`RemoteClientP1`: a lost
    connection mid-run surfaces as ``TransientNetworkError``.
    """

    def __init__(self, host: str, port: int, user_id: str,
                 signer, verifier, order: "int | StoreSpec" = 8,
                 window: int = DEFAULT_WINDOW, **kwargs) -> None:
        super().__init__(host, port, user_id, signer, verifier,
                         order=order, **kwargs)
        if window < 1:
            raise ValueError("pipeline window must be at least 1")
        self.window = window
        self._inflight: deque[tuple[Query, Request]] = deque()
        self._rid_nonce = os.urandom(4).hex()
        self._next_seq = 0
        #: True when the next response must present a verifiable RSA
        #: signature (batch head); False inside a signing run.
        self._expect_signed = True
        self._prev_new_root: Digest | None = None
        self._prev_ctr: int | None = None
        self.followups_sent = 0

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def submit(self, query: Query) -> list:
        """Queue one operation; returns answers completed on the way."""
        drained = []
        while len(self._inflight) >= self.window:
            drained.append(self._drain_one())
        request = Request(query=query, extras={
            "user": self.user_id,
            "rid": f"{self.user_id}:{self._rid_nonce}:{self._next_seq}"})
        self._next_seq += 1
        self._inflight.append((query, request))
        try:
            send_message(self._sock, request)
        except (OSError, FramingError) as exc:
            raise TransientNetworkError(
                f"Protocol I pipelined submit failed in transit: {exc}") from exc
        return drained

    def drain(self) -> list:
        """Complete (and verify) every in-flight operation, in order."""
        answers = []
        while self._inflight:
            answers.append(self._drain_one())
        return answers

    def execute(self, query: Query) -> object:
        """Stop-and-wait compatibility: submit, then drain everything."""
        answers = self.submit(query)
        answers.extend(self.drain())
        return answers[-1]

    def _drain_one(self) -> object:
        from repro.crypto.signatures import Signature

        try:
            self._capture.clear()
            message = recv_message(self._sock, capture=self._capture)
            if message is None:
                raise FramingError("server closed the connection")
        except (OSError, FramingError) as exc:
            raise TransientNetworkError(
                f"Protocol I pipelined operation failed in transit: "
                f"{exc}") from exc
        response = _expect_response(message)
        query, request = self._inflight.popleft()
        try:
            echoed = response.extras.get("rid")
            if echoed is not None and echoed != request.extras["rid"]:
                raise IntegrityError(
                    f"response names request id {echoed!r} but the oldest "
                    f"in-flight operation is {request.extras['rid']!r}")
            try:
                ctr = int(response.extras["ctr"])
                last_user = response.extras["last_user"]
                signature = response.extras["sig"]
                final = bool(response.extras.get("batch_final", True))
            except (KeyError, TypeError, ValueError) as exc:
                raise IntegrityError("malformed response") from exc
            if ctr < self.gctr:
                raise IntegrityError(
                    f"operation counter regressed: {ctr} after {self.gctr}")
            try:
                outcome = derive_outcome(query, response.result, self._order)
            except ProofError as exc:
                raise IntegrityError(
                    f"verification object rejected: {exc}") from exc
            if self._expect_signed:
                expected = self._hash_state(outcome.old_root, ctr)
                if (not isinstance(signature, Signature)
                        or signature.signer_id != last_user
                        or not self._verifier.verify(signature, expected)):
                    raise IntegrityError("illegitimate state signature")
            else:
                # Inside a signing run: membership in the hash chain
                # anchored at the batch head's verified signature.
                if outcome.old_root != self._prev_new_root:
                    raise IntegrityError(
                        "batch root chain broken: this operation's "
                        "pre-state is not the previous operation's "
                        "post-state")
                if self._prev_ctr is None or ctr != self._prev_ctr + 1:
                    raise IntegrityError(
                        f"batch counter not contiguous: {ctr} after "
                        f"{self._prev_ctr}")
        except IntegrityError as exc:
            if isinstance(exc, ServerBusyError):
                raise
            self._on_detection(exc, request)
            raise
        self.lctr += 1
        self.gctr = ctr + 1
        self._prev_new_root = outcome.new_root
        self._prev_ctr = ctr
        if final:
            new_sig = self._signer.sign(
                self._hash_state(outcome.new_root, ctr + 1))
            try:
                send_message(self._sock, Followup(
                    extras={"sig": new_sig, "user": self.user_id}))
            except (OSError, FramingError) as exc:
                raise TransientNetworkError(
                    f"Protocol I follow-up failed in transit: {exc}") from exc
            self.followups_sent += 1
            self._expect_signed = True
        else:
            self._expect_signed = False
        # Only after any due follow-up went out: a divergence raised by
        # the quorum check must not leave the server blocked on us.
        self._record_quorum(ctr + 1, outcome.new_root, request)
        self._maybe_quorum_check()
        return outcome.answer
