"""A TCP Trusted-CVS server: the untrusted party, over real sockets.

Runs a :class:`~repro.mtree.database.VerifiedDatabase` behind a server
protocol -- Protocol II by default (counter + last-user attribution,
never blocks), or Protocol I (signed roots: the server may not answer
the next query until the operating client returns its signature over
the new root, which the handler enforces with a condition variable).

Speaks the binary wire format, one length-prefixed frame per message.
Requests from all connections serialise through one lock -- the paper's
serial execution model.

The server needs no keys and is trusted with nothing: every response
carries the verification object clients check.  Use
:class:`~repro.net.client.RemoteClient` (Protocol II) or
:class:`~repro.net.client.RemoteClientP1` (Protocol I) to talk to it.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.mtree.database import VerifiedDatabase
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import ErrorReply, Followup, Request, ServerProtocol, ServerState
from repro.protocols.protocol2 import Protocol2Server
from repro.net.framing import FramingError, recv_message, send_message
from repro.wire import WireError

#: how long a handler waits for another client's follow-up signature
#: before giving up on the request (Protocol I only)
BLOCK_TIMEOUT_SECONDS = 30.0

_REQUEST_MS = _registry.histogram(
    "net.request_ms", "server-side request handling time (incl. blocking)")
_BLOCK_WAITS = _registry.counter(
    "net.block_waits", "requests that found the server blocked (Protocol I)")
_BLOCK_WAIT_MS = _registry.histogram(
    "net.block_wait_ms", "time spent waiting on another client's follow-up")
_BLOCK_TIMEOUTS = _registry.counter(
    "net.block_timeouts", "requests refused because the block never cleared")
_FOLLOWUPS = _registry.counter(
    "net.followups", "follow-up signatures absorbed (Protocol I)")


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: TrustedCvsTcpServer = self.server  # type: ignore[assignment]
        while True:
            try:
                message = recv_message(self.request)
            except (FramingError, WireError, OSError):
                return
            if message is None:
                return
            if isinstance(message, Followup):
                user_id = message.extras.get("user", "anonymous")
                with server.state_cond:
                    server.protocol.handle_followup(
                        user_id, message, server.state, round_no=server.tick())
                    server.state_cond.notify_all()
                if _obs.enabled:
                    _FOLLOWUPS.inc(user=user_id)
                continue
            if not isinstance(message, Request):
                return  # protocol violation: drop the connection
            user_id = message.extras.get("user", "anonymous")
            started = time.perf_counter_ns() if _obs.enabled else 0
            with server.state_cond:
                # Protocol I blocking: wait for the previous operator's
                # signature before serving the next query.
                blocked = server.protocol.blocked(server.state)
                if blocked and _obs.enabled:
                    _BLOCK_WAITS.inc()
                wait_started = time.perf_counter_ns() if blocked and _obs.enabled else 0
                cleared = server.state_cond.wait_for(
                    lambda: not server.protocol.blocked(server.state),
                    timeout=server.block_timeout)
                if wait_started:
                    _BLOCK_WAIT_MS.observe(
                        (time.perf_counter_ns() - wait_started) / 1e6)
                if not cleared:
                    # The operating client never returned its signature.
                    # Refuse this request with an explicit error frame so
                    # the waiting client fails fast instead of hanging on
                    # a silently dropped connection.
                    if _obs.enabled:
                        _BLOCK_TIMEOUTS.inc()
                    try:
                        send_message(self.request, ErrorReply(
                            reason="server blocked awaiting a follow-up signature",
                            extras={"timeout_s": server.block_timeout}))
                    except OSError:
                        return
                    continue
                response = server.protocol.handle_request(
                    user_id, message, server.state, round_no=server.tick())
            if _obs.enabled:
                _REQUEST_MS.observe(
                    (time.perf_counter_ns() - started) / 1e6, user=user_id)
            try:
                send_message(self.request, response)
            except OSError:
                return


class TrustedCvsTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server; requests serialise through ``state_cond``."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
        block_timeout: float = BLOCK_TIMEOUT_SECONDS,
    ) -> None:
        super().__init__((host, port), _Handler)
        if state is not None:
            self.state = state
        else:
            self.state = ServerState(database=database or VerifiedDatabase(order=order))
        self.protocol = protocol or Protocol2Server()
        self.protocol.initialize(self.state)
        self.state_cond = threading.Condition()
        self.block_timeout = block_timeout
        self._round = 0

    @property
    def state_lock(self):
        """The lock guarding server state (the condition's lock)."""
        return self.state_cond

    def tick(self) -> int:
        self._round += 1
        return self._round

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait until no follow-up is outstanding (Protocol I).

        Clients send their post-operation signature asynchronously, so
        ``put()`` returning does not mean the server has absorbed it.
        Anything that inspects or swaps ``state`` out-of-band (tests,
        attack harnesses) should quiesce first or it races the in-flight
        follow-up.  Returns False on timeout.
        """
        if timeout is None:
            timeout = self.block_timeout
        with self.state_cond:
            return self.state_cond.wait_for(
                lambda: not self.protocol.blocked(self.state), timeout=timeout)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def initial_root_digest(self):
        """The *current* root digest -- call it before serving any
        operations to capture the common-knowledge genesis anchor that
        :func:`~repro.net.client.sync_check` is anchored at."""
        with self.state_cond:
            return self.state.database.root_digest()


def serve_in_thread(
    order: int = 8,
    database: VerifiedDatabase | None = None,
    port: int = 0,
    protocol: ServerProtocol | None = None,
    state: ServerState | None = None,
    block_timeout: float = BLOCK_TIMEOUT_SECONDS,
) -> TrustedCvsTcpServer:
    """Start a server on an ephemeral port; returns the running server.

    Call ``server.shutdown(); server.server_close()`` when done.
    """
    server = TrustedCvsTcpServer(order=order, database=database, port=port,
                                 protocol=protocol, state=state,
                                 block_timeout=block_timeout)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
