"""A TCP Trusted-CVS server: the untrusted party, over real sockets.

Runs a :class:`~repro.mtree.database.VerifiedDatabase` behind a server
protocol -- Protocol II by default (counter + last-user attribution,
never blocks), or Protocol I (signed roots: the server may not answer
the next query until the operating client returns its signature over
the new root, which the handler enforces with a condition variable).

Speaks the binary wire format, one length-prefixed frame per message.
Requests from all connections serialise through one lock -- the paper's
serial execution model.

The server needs no keys and is trusted with nothing: every response
carries the verification object clients check.  Use
:class:`~repro.net.client.RemoteClient` (Protocol II) or
:class:`~repro.net.client.RemoteClientP1` (Protocol I) to talk to it.

Crash safety (``data_dir``): when given a data directory the server
keeps a write-ahead log and periodic shape-exact snapshots (see
:mod:`repro.net.wal`).  A restarted server replays to the identical
root digest, counters, and request-ID dedup table, so clients that
retry in-flight operations are answered exactly once and resume their
verified sessions as if nothing happened.

This is the *threaded* deployment: one handler thread per connection,
all of them serialised through ``state_cond``.  The state machine
itself -- branches, dedup, WAL, attack hooks -- lives in
:class:`~repro.net.core.ServerCore`, shared with the asyncio
deployment (:mod:`repro.net.aserver`), which multiplexes thousands of
connections on one event loop and batches work instead.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from repro.mtree.database import VerifiedDatabase
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import (
    ErrorReply,
    Followup,
    Request,
    Response,
    ServerProtocol,
    ServerState,
)
from repro.protocols.protocol1 import DEFER_FOLLOWUP_KEY
from repro.net.core import DEDUP_WINDOW, SNAPSHOT_EVERY, ServerCore
from repro.net.framing import FramingError, recv_message, send_message
from repro.wire import WireError

#: how long a handler waits for another client's follow-up signature
#: before giving up on the request (Protocol I only)
BLOCK_TIMEOUT_SECONDS = 30.0

_REQUEST_MS = _registry.histogram(
    "net.request_ms", "server-side request handling time (incl. blocking)")
_BLOCK_WAITS = _registry.counter(
    "net.block_waits", "requests that found the server blocked (Protocol I)")
_BLOCK_WAIT_MS = _registry.histogram(
    "net.block_wait_ms", "time spent waiting on another client's follow-up")
_BLOCK_TIMEOUTS = _registry.counter(
    "net.block_timeouts", "requests refused because the block never cleared")
_FOLLOWUPS = _registry.counter(
    "net.followups", "follow-up signatures absorbed (Protocol I)")


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: TrustedCvsTcpServer = self.server  # type: ignore[assignment]
        server._register_connection(self.request)
        try:
            if server._workers is not None:
                with server._workers:
                    self._serve_connection(server)
            else:
                self._serve_connection(server)
        finally:
            server._unregister_connection(self.request)

    def _serve_connection(self, server) -> None:  # pragma: no cover
        while True:
            try:
                message = recv_message(self.request)
            except (FramingError, WireError, OSError):
                return
            if message is None:
                return
            if isinstance(message, Followup):
                user_id = message.extras.get("user", "anonymous")
                with server.state_cond:
                    server.apply_followup(user_id, message)
                    server.state_cond.notify_all()
                if _obs.enabled:
                    _FOLLOWUPS.inc(user=user_id)
                continue
            if not isinstance(message, Request):
                return  # protocol violation: drop the connection
            # The defer-followup marker is server-internal (stamped on
            # logged batch requests); a client that sets it on the wire
            # would skip its blocking signature, so strip it here.
            message.extras.pop(DEFER_FOLLOWUP_KEY, None)
            user_id = message.extras.get("user", "anonymous")
            started = time.perf_counter_ns() if _obs.enabled else 0
            with server.state_cond:
                # Protocol I blocking: wait for the previous operator's
                # signature before serving the next query.  Under a
                # Byzantine fork each user waits on *its own* branch's
                # outstanding follow-up, like a real forking server would.
                blocked = server.blocked_for(user_id)
                if blocked and _obs.enabled:
                    _BLOCK_WAITS.inc()
                wait_started = time.perf_counter_ns() if blocked and _obs.enabled else 0
                cleared = server.state_cond.wait_for(
                    lambda: not server.blocked_for(user_id),
                    timeout=server.block_timeout)
                if wait_started:
                    _BLOCK_WAIT_MS.observe(
                        (time.perf_counter_ns() - wait_started) / 1e6)
                if not cleared:
                    # The operating client never returned its signature.
                    # Refuse this request with an explicit error frame so
                    # the waiting client fails fast instead of hanging on
                    # a silently dropped connection.
                    if _obs.enabled:
                        _BLOCK_TIMEOUTS.inc()
                    try:
                        send_message(self.request, ErrorReply(
                            reason="server blocked awaiting a follow-up signature",
                            extras={"timeout_s": server.block_timeout,
                                    "retryable": True}))
                    except OSError:
                        return
                    continue
                response = server.apply_request(user_id, message)
            if _obs.enabled:
                _REQUEST_MS.observe(
                    (time.perf_counter_ns() - started) / 1e6, user=user_id)
            try:
                send_message(self.request, response)
            except OSError:
                return


class TrustedCvsTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server; requests serialise through ``state_cond``."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
        block_timeout: float = BLOCK_TIMEOUT_SECONDS,
        data_dir: str | None = None,
        snapshot_every: int = SNAPSHOT_EVERY,
        fsync: bool = True,
        attack=None,
        dedup_window: int = DEDUP_WINDOW,
        max_workers: int | None = None,
        shards: int = 1,
        replicator=None,
        backend: str = "file",
        io=None,
        lock: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.block_timeout = block_timeout
        self.state_cond = threading.Condition()
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._workers = (threading.BoundedSemaphore(max_workers)
                         if max_workers else None)
        self.core = ServerCore(order=order, database=database,
                               protocol=protocol, state=state,
                               data_dir=data_dir,
                               snapshot_every=snapshot_every, fsync=fsync,
                               attack=attack, dedup_window=dedup_window,
                               shards=shards, replicator=replicator,
                               backend=backend, io=io, lock=lock)

    # -- core delegation ---------------------------------------------------

    @property
    def protocol(self) -> ServerProtocol:
        return self.core.protocol

    @property
    def attack(self):
        return self.core.attack

    @property
    def states(self) -> dict[str, ServerState]:
        return self.core.states

    @property
    def state(self) -> ServerState:
        """The main (honest-history) state branch."""
        return self.core.state

    @state.setter
    def state(self, value: ServerState) -> None:
        self.core.state = value

    @property
    def replayed_records(self) -> int:
        return self.core.replayed_records

    @property
    def _round(self) -> int:
        return self.core.round

    @property
    def _store(self):
        return self.core.store

    def apply_request(self, user_id: str, message: Request) -> Response:
        """Dedup-check, log, and execute one request (lock held)."""
        return self.core.apply_request(user_id, message)

    def apply_followup(self, user_id: str, message: Followup) -> None:
        """Log and absorb one follow-up message (lock held)."""
        self.core.apply_followup(user_id, message)

    def blocked_for(self, user_id: str) -> bool:
        """Whether this user's next request must wait (lock held)."""
        return self.core.blocked_for(user_id)

    def tick(self) -> int:
        return self.core.tick()

    def checkpoint(self) -> None:
        """Write a snapshot now (durable mode only); truncates the WAL."""
        if self.core.store is None:
            return
        with self.state_cond:
            self.core.snapshot()

    # -- connection lifecycle ----------------------------------------------

    def _register_connection(self, sock) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def _unregister_connection(self, sock) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def stop(self, snapshot: bool = False) -> None:
        """Stop serving.  With ``snapshot=False`` this is the crash-
        equivalent shutdown: every live connection is severed and
        nothing is flushed beyond what the WAL already holds, which is
        exactly what recovery must cope with (a SIGKILLed process takes
        its established sockets down with it)."""
        self.shutdown()
        self.server_close()
        with self._connections_lock:
            active = list(self._connections)
        for sock in active:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self.core.store is not None and snapshot:
            with self.state_cond:
                self.core.snapshot()
        self.core.close_store()

    def graceful_stop(self, timeout: float | None = None) -> bool:
        """The operator shutdown: quiesce, drain replication, make the
        WAL durable, write a final snapshot, *then* stop serving.

        Unlike :meth:`stop` (the crash-equivalent teardown the recovery
        tests exercise), nothing is lost mid-batch: outstanding
        Protocol I follow-ups are waited for, the replicator flushes
        every created deposit to every witness, and the snapshot means a
        restart replays zero WAL records.  Returns False when the
        quiesce or the replication flush timed out (shutdown still
        proceeds -- the WAL keeps its durability promise either way).
        """
        if timeout is None:
            timeout = self.block_timeout
        clean = self.quiesce(timeout=timeout)
        if self.core.replicator is not None:
            clean = self.core.replicator.flush(timeout=timeout) and clean
        with self.state_cond:
            if self.core.store is not None:
                self.core.store.wal_sync()
                self.core.snapshot()
        self.stop(snapshot=False)
        return clean

    # -- quiescence --------------------------------------------------------

    @property
    def state_lock(self):
        """The lock guarding server state (the condition's lock)."""
        return self.state_cond

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait until no follow-up is outstanding on any branch
        (Protocol I).

        Clients send their post-operation signature asynchronously, so
        ``put()`` returning does not mean the server has absorbed it.
        Anything that inspects or swaps ``state`` out-of-band (tests,
        attack harnesses) should use :meth:`read_quiesced` -- quiescing
        and *then* reading reopens the race this method cannot close on
        its own.  Returns False on timeout.
        """
        if timeout is None:
            timeout = self.block_timeout
        with self.state_cond:
            return self.state_cond.wait_for(self.core.all_unblocked,
                                            timeout=timeout)

    def read_quiesced(self, reader, timeout: float | None = None):
        """Run ``reader(main_state)`` under the state lock once every
        branch is unblocked, in one critical section.

        This closes the in-flight race that ``quiesce()`` alone leaves
        open: quiescing and then re-acquiring the lock to read lets a
        queued request execute in between, so the caller could observe a
        root from mid-transaction (Protocol I: a new root whose
        follow-up signature has not been absorbed yet).  Returns the
        reader's result, or ``None`` if the block never cleared within
        ``timeout``.
        """
        if timeout is None:
            timeout = self.block_timeout
        with self.state_cond:
            if not self.state_cond.wait_for(self.core.all_unblocked,
                                            timeout=timeout):
                return None
            return reader(self.core.states["main"])

    def consistent_view(self, timeout: float | None = None):
        """An atomic ``(root_digest, ctr, tick)`` triple of the main
        branch at a quiescent instant, or ``None`` on timeout."""
        return self.read_quiesced(
            lambda state: (state.database.root_digest(), state.ctr,
                           self.core.round),
            timeout=timeout)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def initial_root_digest(self):
        """The *current* root digest -- call it before serving any
        operations to capture the common-knowledge genesis anchor that
        :func:`~repro.net.client.sync_check` is anchored at."""
        with self.state_cond:
            return self.state.database.root_digest()


def serve_in_thread(
    order: int = 8,
    database: VerifiedDatabase | None = None,
    port: int = 0,
    protocol: ServerProtocol | None = None,
    state: ServerState | None = None,
    block_timeout: float = BLOCK_TIMEOUT_SECONDS,
    data_dir: str | None = None,
    snapshot_every: int = SNAPSHOT_EVERY,
    fsync: bool = True,
    attack=None,
    max_workers: int | None = None,
    shards: int = 1,
    replicator=None,
    backend: str = "file",
    io=None,
    lock: bool = False,
) -> TrustedCvsTcpServer:
    """Start a server on an ephemeral port; returns the running server.

    Call ``server.stop()`` (or ``server.shutdown(); server.server_close()``)
    when done.
    """
    server = TrustedCvsTcpServer(order=order, database=database, port=port,
                                 protocol=protocol, state=state,
                                 block_timeout=block_timeout,
                                 data_dir=data_dir,
                                 snapshot_every=snapshot_every, fsync=fsync,
                                 attack=attack, max_workers=max_workers,
                                 shards=shards, replicator=replicator,
                                 backend=backend, io=io, lock=lock)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
