"""A TCP Trusted-CVS server: the untrusted party, over real sockets.

Runs a :class:`~repro.mtree.database.VerifiedDatabase` behind a server
protocol -- Protocol II by default (counter + last-user attribution,
never blocks), or Protocol I (signed roots: the server may not answer
the next query until the operating client returns its signature over
the new root, which the handler enforces with a condition variable).

Speaks the binary wire format, one length-prefixed frame per message.
Requests from all connections serialise through one lock -- the paper's
serial execution model.

The server needs no keys and is trusted with nothing: every response
carries the verification object clients check.  Use
:class:`~repro.net.client.RemoteClient` (Protocol II) or
:class:`~repro.net.client.RemoteClientP1` (Protocol I) to talk to it.
"""

from __future__ import annotations

import socketserver
import threading

from repro.mtree.database import VerifiedDatabase
from repro.protocols.base import Followup, Request, ServerProtocol, ServerState
from repro.protocols.protocol2 import Protocol2Server
from repro.net.framing import FramingError, recv_message, send_message
from repro.wire import WireError

#: how long a handler waits for another client's follow-up signature
#: before giving up on the request (Protocol I only)
BLOCK_TIMEOUT_SECONDS = 30.0


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: TrustedCvsTcpServer = self.server  # type: ignore[assignment]
        while True:
            try:
                message = recv_message(self.request)
            except (FramingError, WireError, OSError):
                return
            if message is None:
                return
            if isinstance(message, Followup):
                user_id = message.extras.get("user", "anonymous")
                with server.state_cond:
                    server.protocol.handle_followup(
                        user_id, message, server.state, round_no=server.tick())
                    server.state_cond.notify_all()
                continue
            if not isinstance(message, Request):
                return  # protocol violation: drop the connection
            user_id = message.extras.get("user", "anonymous")
            with server.state_cond:
                # Protocol I blocking: wait for the previous operator's
                # signature before serving the next query.
                if not server.state_cond.wait_for(
                        lambda: not server.protocol.blocked(server.state),
                        timeout=BLOCK_TIMEOUT_SECONDS):
                    return
                response = server.protocol.handle_request(
                    user_id, message, server.state, round_no=server.tick())
            try:
                send_message(self.request, response)
            except OSError:
                return


class TrustedCvsTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server; requests serialise through ``state_cond``."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        if state is not None:
            self.state = state
        else:
            self.state = ServerState(database=database or VerifiedDatabase(order=order))
        self.protocol = protocol or Protocol2Server()
        self.protocol.initialize(self.state)
        self.state_cond = threading.Condition()
        self._round = 0

    @property
    def state_lock(self):
        """The lock guarding server state (the condition's lock)."""
        return self.state_cond

    def tick(self) -> int:
        self._round += 1
        return self._round

    def quiesce(self, timeout: float = BLOCK_TIMEOUT_SECONDS) -> bool:
        """Wait until no follow-up is outstanding (Protocol I).

        Clients send their post-operation signature asynchronously, so
        ``put()`` returning does not mean the server has absorbed it.
        Anything that inspects or swaps ``state`` out-of-band (tests,
        attack harnesses) should quiesce first or it races the in-flight
        follow-up.  Returns False on timeout.
        """
        with self.state_cond:
            return self.state_cond.wait_for(
                lambda: not self.protocol.blocked(self.state), timeout=timeout)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def initial_root_digest(self):
        """The *current* root digest -- call it before serving any
        operations to capture the common-knowledge genesis anchor that
        :func:`~repro.net.client.sync_check` is anchored at."""
        with self.state_cond:
            return self.state.database.root_digest()


def serve_in_thread(
    order: int = 8,
    database: VerifiedDatabase | None = None,
    port: int = 0,
    protocol: ServerProtocol | None = None,
    state: ServerState | None = None,
) -> TrustedCvsTcpServer:
    """Start a server on an ephemeral port; returns the running server.

    Call ``server.shutdown(); server.server_close()`` when done.
    """
    server = TrustedCvsTcpServer(order=order, database=database, port=port,
                                 protocol=protocol, state=state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
