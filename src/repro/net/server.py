"""A TCP Trusted-CVS server: the untrusted party, over real sockets.

Runs a :class:`~repro.mtree.database.VerifiedDatabase` behind a server
protocol -- Protocol II by default (counter + last-user attribution,
never blocks), or Protocol I (signed roots: the server may not answer
the next query until the operating client returns its signature over
the new root, which the handler enforces with a condition variable).

Speaks the binary wire format, one length-prefixed frame per message.
Requests from all connections serialise through one lock -- the paper's
serial execution model.

The server needs no keys and is trusted with nothing: every response
carries the verification object clients check.  Use
:class:`~repro.net.client.RemoteClient` (Protocol II) or
:class:`~repro.net.client.RemoteClientP1` (Protocol I) to talk to it.

Crash safety (``data_dir``): when given a data directory the server
keeps a write-ahead log and periodic shape-exact snapshots (see
:mod:`repro.net.wal`).  A restarted server replays to the identical
root digest, counters, and request-ID dedup table, so clients that
retry in-flight operations are answered exactly once and resume their
verified sessions as if nothing happened.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from repro.mtree.database import VerifiedDatabase
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import (
    ErrorReply,
    Followup,
    Request,
    Response,
    ServerProtocol,
    ServerState,
    request_id,
)
from repro.protocols.protocol2 import Protocol2Server
from repro.net.byzantine import as_wire_attack
from repro.net.framing import FramingError, recv_message, send_message
from repro.net.wal import ServerStore
from repro.wire import WireError

#: how long a handler waits for another client's follow-up signature
#: before giving up on the request (Protocol I only)
BLOCK_TIMEOUT_SECONDS = 30.0

#: write a snapshot (and truncate the WAL) every this many logged
#: messages; bounds replay work after a crash.
SNAPSHOT_EVERY = 256

_REQUEST_MS = _registry.histogram(
    "net.request_ms", "server-side request handling time (incl. blocking)")
_BLOCK_WAITS = _registry.counter(
    "net.block_waits", "requests that found the server blocked (Protocol I)")
_BLOCK_WAIT_MS = _registry.histogram(
    "net.block_wait_ms", "time spent waiting on another client's follow-up")
_BLOCK_TIMEOUTS = _registry.counter(
    "net.block_timeouts", "requests refused because the block never cleared")
_FOLLOWUPS = _registry.counter(
    "net.followups", "follow-up signatures absorbed (Protocol I)")
_WAL_APPENDS = _registry.counter(
    "server.wal_appends", "messages durably logged before execution")
_WAL_REPLAYS = _registry.counter(
    "server.wal_replays", "WAL records re-executed during recovery")
_SNAPSHOTS = _registry.counter(
    "server.snapshots", "state snapshots written (WAL truncations)")
_DEDUP_HITS = _registry.counter(
    "server.dedup_hits", "retried requests answered from the dedup table")


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: TrustedCvsTcpServer = self.server  # type: ignore[assignment]
        server._register_connection(self.request)
        try:
            self._serve_connection(server)
        finally:
            server._unregister_connection(self.request)

    def _serve_connection(self, server) -> None:  # pragma: no cover
        while True:
            try:
                message = recv_message(self.request)
            except (FramingError, WireError, OSError):
                return
            if message is None:
                return
            if isinstance(message, Followup):
                user_id = message.extras.get("user", "anonymous")
                with server.state_cond:
                    server.apply_followup(user_id, message)
                    server.state_cond.notify_all()
                if _obs.enabled:
                    _FOLLOWUPS.inc(user=user_id)
                continue
            if not isinstance(message, Request):
                return  # protocol violation: drop the connection
            user_id = message.extras.get("user", "anonymous")
            started = time.perf_counter_ns() if _obs.enabled else 0
            with server.state_cond:
                # Protocol I blocking: wait for the previous operator's
                # signature before serving the next query.  Under a
                # Byzantine fork each user waits on *its own* branch's
                # outstanding follow-up, like a real forking server would.
                blocked = server.blocked_for(user_id)
                if blocked and _obs.enabled:
                    _BLOCK_WAITS.inc()
                wait_started = time.perf_counter_ns() if blocked and _obs.enabled else 0
                cleared = server.state_cond.wait_for(
                    lambda: not server.blocked_for(user_id),
                    timeout=server.block_timeout)
                if wait_started:
                    _BLOCK_WAIT_MS.observe(
                        (time.perf_counter_ns() - wait_started) / 1e6)
                if not cleared:
                    # The operating client never returned its signature.
                    # Refuse this request with an explicit error frame so
                    # the waiting client fails fast instead of hanging on
                    # a silently dropped connection.
                    if _obs.enabled:
                        _BLOCK_TIMEOUTS.inc()
                    try:
                        send_message(self.request, ErrorReply(
                            reason="server blocked awaiting a follow-up signature",
                            extras={"timeout_s": server.block_timeout,
                                    "retryable": True}))
                    except OSError:
                        return
                    continue
                response = server.apply_request(user_id, message)
            if _obs.enabled:
                _REQUEST_MS.observe(
                    (time.perf_counter_ns() - started) / 1e6, user=user_id)
            try:
                send_message(self.request, response)
            except OSError:
                return


class TrustedCvsTcpServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server; requests serialise through ``state_cond``."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
        block_timeout: float = BLOCK_TIMEOUT_SECONDS,
        data_dir: str | None = None,
        snapshot_every: int = SNAPSHOT_EVERY,
        fsync: bool = True,
        attack=None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.protocol = protocol or Protocol2Server()
        self.block_timeout = block_timeout
        self.snapshot_every = snapshot_every
        self.state_cond = threading.Condition()
        self._round = 0
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._dedup: dict[str, tuple[str, Response]] = {}
        self._ops_since_snapshot = 0
        self._store: ServerStore | None = None
        self.replayed_records = 0
        #: named state branches; ``"main"`` is the honest history, other
        #: entries are per-victim forks a Byzantine attack may create.
        self.states: dict[str, ServerState] = {}
        self.attack = as_wire_attack(attack)
        if data_dir is not None:
            self._store = ServerStore(data_dir, fsync=fsync)
            self._recover(order=order, database=database, state=state)
        else:
            if state is not None:
                self.state = state
            else:
                self.state = ServerState(
                    database=database or VerifiedDatabase(order=order))
            self.protocol.initialize(self.state)

    @property
    def state(self) -> ServerState:
        """The main (honest-history) state branch."""
        return self.states["main"]

    @state.setter
    def state(self, value: ServerState) -> None:
        self.states["main"] = value

    # -- durability --------------------------------------------------------

    def _recover(self, order: int, database: VerifiedDatabase | None,
                 state: ServerState | None) -> None:
        """Restore from snapshot + WAL, or bootstrap a fresh store."""
        snapshot = self._store.load_snapshot()
        if snapshot is None:
            # First run in this directory: initialise, then anchor the
            # WAL chain with a genesis snapshot so every later record
            # verifies against a recorded head.
            if state is not None:
                self.state = state
            else:
                self.state = ServerState(
                    database=database or VerifiedDatabase(order=order))
            self.protocol.initialize(self.state)
            self._store.write_snapshot(self.state, self._dedup)
        else:
            restored_db, ctr, meta, dedup, chain = snapshot
            self.state = ServerState(database=restored_db, ctr=ctr, meta=meta)
            self._dedup = dict(dedup)
            self._store.set_chain(chain)
        records = self._store.wal_records(self._store._chain)
        for message in records:
            user_id = message.extras.get("user", "anonymous")
            if isinstance(message, Followup):
                self._execute_followup(user_id, message)
            else:
                response = self._execute_request(user_id, message)
                rid = request_id(message)
                if rid is not None:
                    self._dedup[user_id] = (rid, response)
            if _obs.enabled:
                _WAL_REPLAYS.inc()
        self.replayed_records = len(records)
        self._ops_since_snapshot = len(records)

    def _execute_request(self, user_id: str, message: Request) -> Response:
        """Execute a request at the next tick -- honestly, or through the
        configured attack.  Both the live path and WAL replay come here,
        so after a crash the per-victim forked branches are deterministically
        reconstructed (the attack triggers on the same tick indices)."""
        round_no = self.tick()
        if self.attack is not None:
            return self.attack.apply_request(self, user_id, message, round_no)
        return self.protocol.handle_request(
            user_id, message, self.state, round_no=round_no)

    def _execute_followup(self, user_id: str, message: Followup) -> None:
        round_no = self.tick()
        if self.attack is not None:
            self.attack.apply_followup(self, user_id, message, round_no)
            return
        self.protocol.handle_followup(
            user_id, message, self.state, round_no=round_no)

    def apply_request(self, user_id: str, message: Request) -> Response:
        """Dedup-check, log, and execute one request (lock held)."""
        rid = request_id(message)
        if rid is not None:
            cached = self._dedup.get(user_id)
            if cached is not None and cached[0] == rid:
                # A retry of an operation that already executed: return
                # the recorded response so the write is never applied
                # twice and the client's register chain stays intact.
                if _obs.enabled:
                    _DEDUP_HITS.inc(user=user_id)
                return cached[1]
        if self._store is not None:
            self._store.wal_append(message)
            if _obs.enabled:
                _WAL_APPENDS.inc()
        response = self._execute_request(user_id, message)
        if rid is not None:
            self._dedup[user_id] = (rid, response)
        self._after_logged_message()
        return response

    def apply_followup(self, user_id: str, message: Followup) -> None:
        """Log and absorb one follow-up message (lock held)."""
        if self._store is not None:
            self._store.wal_append(message)
            if _obs.enabled:
                _WAL_APPENDS.inc()
        self._execute_followup(user_id, message)
        self._after_logged_message()

    def _after_logged_message(self) -> None:
        if self._store is None:
            return
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self.snapshot_every:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        if self.attack is not None:
            # A snapshot persists only the main branch and truncates the
            # WAL beneath any Byzantine forks; replaying from it could
            # not reconstruct them (ticks restart at the snapshot).  In
            # Byzantine mode the genesis-anchored WAL is the sole truth.
            return
        self._store.write_snapshot(self.state, self._dedup)
        self._ops_since_snapshot = 0
        if _obs.enabled:
            _SNAPSHOTS.inc()

    def checkpoint(self) -> None:
        """Write a snapshot now (durable mode only); truncates the WAL."""
        if self._store is None:
            return
        with self.state_cond:
            self._snapshot_locked()

    def _register_connection(self, sock) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def _unregister_connection(self, sock) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def stop(self, snapshot: bool = False) -> None:
        """Stop serving.  With ``snapshot=False`` this is the crash-
        equivalent shutdown: every live connection is severed and
        nothing is flushed beyond what the WAL already holds, which is
        exactly what recovery must cope with (a SIGKILLed process takes
        its established sockets down with it)."""
        self.shutdown()
        self.server_close()
        with self._connections_lock:
            active = list(self._connections)
        for sock in active:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._store is not None:
            if snapshot:
                with self.state_cond:
                    self._snapshot_locked()
            self._store.close()

    # -- shared plumbing ---------------------------------------------------

    @property
    def state_lock(self):
        """The lock guarding server state (the condition's lock)."""
        return self.state_cond

    def tick(self) -> int:
        self._round += 1
        return self._round

    def blocked_for(self, user_id: str) -> bool:
        """Whether this user's next request must wait (lock held).

        Honest servers have one history; a Byzantine server routes the
        check through the branch the attack would serve this user from,
        so a forked victim blocks on its own branch's pending follow-up
        rather than the main branch's.
        """
        if self.attack is not None:
            state = self.attack.route_state(self, user_id, self._round + 1)
            return self.protocol.blocked(state)
        return self.protocol.blocked(self.state)

    def _all_unblocked(self) -> bool:
        return all(not self.protocol.blocked(s) for s in self.states.values())

    def quiesce(self, timeout: float | None = None) -> bool:
        """Wait until no follow-up is outstanding on any branch
        (Protocol I).

        Clients send their post-operation signature asynchronously, so
        ``put()`` returning does not mean the server has absorbed it.
        Anything that inspects or swaps ``state`` out-of-band (tests,
        attack harnesses) should use :meth:`read_quiesced` -- quiescing
        and *then* reading reopens the race this method cannot close on
        its own.  Returns False on timeout.
        """
        if timeout is None:
            timeout = self.block_timeout
        with self.state_cond:
            return self.state_cond.wait_for(self._all_unblocked,
                                            timeout=timeout)

    def read_quiesced(self, reader, timeout: float | None = None):
        """Run ``reader(main_state)`` under the state lock once every
        branch is unblocked, in one critical section.

        This closes the in-flight race that ``quiesce()`` alone leaves
        open: quiescing and then re-acquiring the lock to read lets a
        queued request execute in between, so the caller could observe a
        root from mid-transaction (Protocol I: a new root whose
        follow-up signature has not been absorbed yet).  Returns the
        reader's result, or ``None`` if the block never cleared within
        ``timeout``.
        """
        if timeout is None:
            timeout = self.block_timeout
        with self.state_cond:
            if not self.state_cond.wait_for(self._all_unblocked,
                                            timeout=timeout):
                return None
            return reader(self.states["main"])

    def consistent_view(self, timeout: float | None = None):
        """An atomic ``(root_digest, ctr, tick)`` triple of the main
        branch at a quiescent instant, or ``None`` on timeout."""
        return self.read_quiesced(
            lambda state: (state.database.root_digest(), state.ctr,
                           self._round),
            timeout=timeout)

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def initial_root_digest(self):
        """The *current* root digest -- call it before serving any
        operations to capture the common-knowledge genesis anchor that
        :func:`~repro.net.client.sync_check` is anchored at."""
        with self.state_cond:
            return self.state.database.root_digest()


def serve_in_thread(
    order: int = 8,
    database: VerifiedDatabase | None = None,
    port: int = 0,
    protocol: ServerProtocol | None = None,
    state: ServerState | None = None,
    block_timeout: float = BLOCK_TIMEOUT_SECONDS,
    data_dir: str | None = None,
    snapshot_every: int = SNAPSHOT_EVERY,
    fsync: bool = True,
    attack=None,
) -> TrustedCvsTcpServer:
    """Start a server on an ephemeral port; returns the running server.

    Call ``server.stop()`` (or ``server.shutdown(); server.server_close()``)
    when done.
    """
    server = TrustedCvsTcpServer(order=order, database=database, port=port,
                                 protocol=protocol, state=state,
                                 block_timeout=block_timeout,
                                 data_dir=data_dir,
                                 snapshot_every=snapshot_every, fsync=fsync,
                                 attack=attack)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
