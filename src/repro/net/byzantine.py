"""Byzantine mode for the TCP deployment: wire-level attack injection.

The attack gallery in :mod:`repro.server.attacks` realises the paper's
malicious-server moves -- forks, dropped commits, tampered answers,
counter replays, forged signatures -- but only ever ran inside the
in-process simulator.  This module adapts those exact strategies to the
request/response wire path of
:class:`~repro.net.server.TrustedCvsTcpServer`, so a real client fleet
over sockets can be attacked deterministically and the k-bounded
deviation-detection guarantees validated end to end.

The adapter keeps the simulator's contract intact: an attack sees a
``server`` exposing ``states`` (a dict of named
:class:`~repro.protocols.base.ServerState` branches, ``"main"`` being
the honest history), ``protocol``, and is consulted per message for
state selection and last-minute response rewriting.  On the wire the
"round number" is the server's message tick -- the index of the message
in the serial execution order -- which is deterministic for a given
workload because retried requests are answered from the dedup table
without re-executing.

Durability interaction: a Byzantine durable server routes WAL *replay*
through the same attack hooks, so after a crash the forked per-victim
branches are reconstructed bit-for-bit (execution and attack triggers
both being deterministic in the tick index).  Automatic snapshots are
suppressed in Byzantine mode -- a snapshot persists only the main
branch, and truncating the WAL underneath a fork would silently erase
the very deviation the harness is injecting.
"""

from __future__ import annotations

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import Followup, Request, Response, ServerState
from repro.server.attacks import Attack

_ATTACKS_INJECTED = _registry.counter(
    "net.attacks_injected",
    "deviating responses a Byzantine server put on the wire")


class WireAttack:
    """Adapts a simulator :class:`~repro.server.attacks.Attack` strategy
    to the TCP server's wire path.

    Wraps any gallery attack (including :class:`CompositeAttack`) and
    tracks ground truth for benchmarks: :attr:`first_deviation_op` is
    the earliest server tick at which the wire actually carried a
    deviating response -- either a response served from a non-main
    branch (for committing protocols that is itself a differing-response
    action per Definition 2.1) or a mutated response object.
    """

    def __init__(self, attack: Attack) -> None:
        self.attack = attack
        self.injected = 0
        self._first_deviation_op: int | None = None

    @property
    def name(self) -> str:
        return self.attack.name

    @property
    def first_deviation_op(self) -> int | None:
        """Earliest tick a deviating response went out (ground truth)."""
        candidates = [
            op for op in (self._first_deviation_op,
                          self.attack.first_deviation_round)
            if op is not None
        ]
        return min(candidates) if candidates else None

    def _mark(self, round_no: int, user_id: str) -> None:
        if self._first_deviation_op is None:
            self._first_deviation_op = round_no
        self.injected += 1
        if _obs.enabled:
            _ATTACKS_INJECTED.inc(attack=self.name, user=user_id)

    # -- wire path hooks ---------------------------------------------------

    def route_state(self, server, user_id: str, round_no: int) -> ServerState:
        """The branch that would serve this user right now.

        Used by the server's blocking check (Protocol I): a forked
        victim must wait on *its own branch's* outstanding follow-up,
        not the main branch's.  May lazily fork, exactly as the
        simulator's per-request selection does.
        """
        return self.attack.select_state(user_id, round_no, server)

    def apply_request(self, server, user_id: str, request: Request,
                      round_no: int) -> Response:
        """Execute one request the way the malicious server would."""
        self.attack.on_round(server, round_no)
        state = self.attack.select_state(user_id, round_no, server)
        deviating = (state is not server.states["main"]
                     and server.protocol.responses_commit_state)
        response = server.protocol.handle_request(
            user_id, request, state, round_no=round_no)
        mutated = self.attack.mutate_response(
            user_id, request, response, state, round_no)
        if mutated is not response:
            deviating = True
        if deviating:
            self._mark(round_no, user_id)
        return mutated

    def apply_followup(self, server, user_id: str, message: Followup,
                       round_no: int) -> None:
        """Absorb a follow-up into the branch that serves its sender."""
        state = self.attack.select_state(user_id, round_no, server)
        server.protocol.handle_followup(
            user_id, message, state, round_no=round_no)


class WitnessCollusion:
    """Byzantine behaviour for one *witness* replica.

    Handed to :class:`~repro.net.replication.WitnessProtocol`, it turns
    that witness into a colluder on every attestation fetch:

    ``"fabricate"``
        answer with attestations over doctored deposits -- a valid
        witness signature wrapping a deposit whose root was flipped and
        whose primary signature is therefore invalid.  Without the
        primary's key this is the strongest equivocation a witness can
        mount, and its shape (valid outer, invalid inner signature) is
        exactly what lets the client name the *witness* as the deviant;
    ``"withhold"``
        deny holding any deposit (and report an empty head), starving
        the fetch -- indistinguishable from lag, so the client must
        treat it as noise and re-sample, never as evidence.

    ``served`` counts fetches the collusion actually answered
    dishonestly -- the benchmark's ground truth that a configured
    colluder was really exercised.  Deposit *storage* stays honest
    either way: colluders still bank the real lineage, modelling
    witnesses that misbehave only where it could pay off.
    """

    MODES = ("fabricate", "withhold")

    def __init__(self, mode: str = "fabricate") -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown collusion mode {mode!r}")
        self.mode = mode
        self.served = 0


def as_wire_attack(attack) -> "WireAttack | None":
    """Normalise ``None`` / a gallery ``Attack`` / a ``WireAttack``."""
    if attack is None or isinstance(attack, WireAttack):
        return attack
    if isinstance(attack, Attack):
        return WireAttack(attack)
    raise TypeError(f"not an attack strategy: {type(attack).__name__}")
