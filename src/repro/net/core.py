"""The transport-agnostic server core shared by the threaded and the
asyncio deployments.

Everything a Trusted-CVS server *is* -- the named state branches, the
protocol, the request-ID dedup table, the WAL + snapshot store, the
Byzantine attack hooks, and the tick counter -- lives here, with **no
locking of its own**.  The caller owns serialisation:

* :class:`~repro.net.server.TrustedCvsTcpServer` wraps every call in
  its ``state_cond`` condition variable (thread-per-connection model);
* :class:`~repro.net.aserver.AsyncTrustedCvsServer` funnels every call
  through a single event-loop drainer task (single-writer model), so
  no lock is needed at all.

The core also implements the *batched* execution path the async server
amortises its work through: :meth:`ServerCore.apply_batch` dedups a
whole batch, appends every fresh request to the WAL with **one** fsync
(group commit), executes them back to back, and recomputes the Merkle
root **once** over all dirty paths (:meth:`MerkleBPlusTree.refresh_root`).
For Protocol I a multi-request batch from one user is a *signing run*:
every request but the last is stamped with the defer-followup marker
before it is logged, so the server blocks (and the client signs) once
per batch rather than once per operation -- and WAL replay, which sees
the stamped requests, reconstructs the exact same per-op responses.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mtree.database import VerifiedDatabase
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import (
    Followup,
    Request,
    Response,
    ServerProtocol,
    ServerState,
    request_id,
)
from repro.protocols.protocol1 import DEFER_FOLLOWUP_KEY
from repro.protocols.protocol2 import Protocol2Server
from repro.net.byzantine import as_wire_attack
from repro.net.wal import ServerStore, open_server_store
from repro.storage.pagestore import StorageError

#: write a snapshot (and truncate the WAL) every this many logged
#: messages; bounds replay work after a crash.
SNAPSHOT_EVERY = 256

#: how many recent (request id, response) pairs the server remembers
#: per user.  Must be at least as large as the deepest client pipeline
#: window, or a reconnecting pipelined client's verbatim resend could
#: re-execute its oldest in-flight operations.
DEDUP_WINDOW = 256

_WAL_APPENDS = _registry.counter(
    "server.wal_appends", "messages durably logged before execution")
_WAL_REPLAYS = _registry.counter(
    "server.wal_replays", "WAL records re-executed during recovery")
_SNAPSHOTS = _registry.counter(
    "server.snapshots", "state snapshots written (WAL truncations)")
_DEDUP_HITS = _registry.counter(
    "server.dedup_hits", "retried requests answered from the dedup table")
_BATCHES = _registry.counter(
    "server.batches", "request batches executed (group commit + one root pass)")
_BATCH_SIZE = _registry.histogram(
    "server.batch_size", "requests executed per batch")
_BATCH_ROOT_NODES = _registry.histogram(
    "server.batch_root_nodes", "Merkle nodes recomputed by the per-batch root pass")
_DIRTY_SHARDS = _registry.histogram(
    "server.dirty_shards", "shards visited per forest refresh pass")
_SNAPSHOT_FAILURES = _registry.counter(
    "server.snapshot_failures",
    "periodic snapshots that failed (ENOSPC/EIO) and will be retried")


class DedupTable:
    """Windowed per-user memory of (request id -> response).

    PR 4's table kept exactly one entry per user, which suffices for a
    stop-and-wait client but not for a pipelined one: a client with W
    in-flight operations that reconnects resends *all* W verbatim, and
    any of them may or may not have executed before the crash.  Keeping
    the last ``window`` responses per user makes the verbatim resend of
    a whole window answerable without re-execution.
    """

    def __init__(self, window: int = DEDUP_WINDOW) -> None:
        if window < 1:
            raise ValueError("dedup window must hold at least one entry")
        self.window = window
        self._users: dict[str, OrderedDict[str, Response]] = {}

    def lookup(self, user_id: str, rid: str) -> Response | None:
        entries = self._users.get(user_id)
        if entries is None:
            return None
        return entries.get(rid)

    def record(self, user_id: str, rid: str, response: Response) -> None:
        entries = self._users.setdefault(user_id, OrderedDict())
        entries[rid] = response
        entries.move_to_end(rid)
        while len(entries) > self.window:
            entries.popitem(last=False)

    def export(self) -> dict[str, list[tuple[str, Response]]]:
        """Snapshot-serialisable form: user -> ordered (rid, response)."""
        return {user: list(entries.items())
                for user, entries in self._users.items()}

    def load(self, data: dict) -> None:
        """Restore from :meth:`export` output (oldest first per user)."""
        self._users.clear()
        for user, pairs in data.items():
            entries = OrderedDict()
            for rid, response in pairs:
                entries[rid] = response
            self._users[user] = entries

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._users.values())


class ServerCore:
    """State, durability, and execution for one Trusted-CVS server.

    No locking: the owner must serialise all calls (see module docs).
    """

    def __init__(
        self,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
        data_dir: str | None = None,
        snapshot_every: int = SNAPSHOT_EVERY,
        fsync: bool = True,
        attack=None,
        dedup_window: int = DEDUP_WINDOW,
        shards: int = 1,
        replicator=None,
        backend: str = "file",
        io=None,
        lock: bool = False,
    ) -> None:
        self.protocol = protocol or Protocol2Server()
        self._shards = shards
        self.snapshot_every = snapshot_every
        self._round = 0
        self.dedup = DedupTable(dedup_window)
        self._ops_since_snapshot = 0
        self.store: ServerStore | None = None
        self.replayed_records = 0
        #: named state branches; ``"main"`` is the honest history, other
        #: entries are per-victim forks a Byzantine attack may create.
        self.states: dict[str, ServerState] = {}
        self.attack = as_wire_attack(attack)
        if data_dir is not None:
            self.store = open_server_store(
                data_dir, backend=backend, fsync=fsync, io=io, lock=lock)
            self._recover(order=order, database=database, state=state)
        else:
            if state is not None:
                self.state = state
            else:
                self.state = ServerState(
                    database=database or VerifiedDatabase(
                        order=order, shards=shards))
            self.protocol.initialize(self.state)
        #: primary-side replication: deposits the main branch's signed
        #: root lineage to the witness group after every executed
        #: request (see :mod:`repro.net.replication`).  Priming after
        #: recovery re-deposits the recovered head so a restarted
        #: primary's witnesses catch up to the live root.
        self.replicator = replicator
        if replicator is not None:
            replicator.prime(self)

    @property
    def state(self) -> ServerState:
        """The main (honest-history) state branch."""
        return self.states["main"]

    @state.setter
    def state(self, value: ServerState) -> None:
        self.states["main"] = value

    # -- durability --------------------------------------------------------

    def _recover(self, order: int, database: VerifiedDatabase | None,
                 state: ServerState | None) -> None:
        """Restore from snapshot + WAL, or bootstrap a fresh store."""
        snapshot = self.store.load_snapshot()
        if snapshot is None:
            # First run in this directory: initialise, then anchor the
            # WAL chain with a genesis snapshot so every later record
            # verifies against a recorded head.
            if state is not None:
                self.state = state
            else:
                self.state = ServerState(
                    database=database or VerifiedDatabase(
                        order=order, shards=self._shards))
            self.protocol.initialize(self.state)
            self.store.write_snapshot(self.state, self.dedup.export())
        else:
            restored_db, ctr, meta, dedup, chain = snapshot
            self.state = ServerState(database=restored_db, ctr=ctr, meta=meta)
            self.dedup.load(dedup)
            self.store.set_chain(chain)
        records = self.store.wal_records(self.store._chain)
        for message in records:
            user_id = message.extras.get("user", "anonymous")
            if isinstance(message, Followup):
                self._execute_followup(user_id, message)
            else:
                response = self._execute_request(user_id, message)
                rid = request_id(message)
                if rid is not None:
                    self.dedup.record(user_id, rid, response)
            if _obs.enabled:
                _WAL_REPLAYS.inc()
        self.replayed_records = len(records)
        self._ops_since_snapshot = len(records)

    def _execute_request(self, user_id: str, message: Request) -> Response:
        """Execute a request at the next tick -- honestly, or through the
        configured attack.  Both the live path and WAL replay come here,
        so after a crash the per-victim forked branches are deterministically
        reconstructed (the attack triggers on the same tick indices)."""
        round_no = self.tick()
        if self.attack is not None:
            response = self.attack.apply_request(self, user_id, message, round_no)
        else:
            response = self.protocol.handle_request(
                user_id, message, self.state, round_no=round_no)
        rid = request_id(message)
        if rid is not None:
            # Echo the idempotency token so pipelined clients can match
            # replies to in-flight requests without trusting FIFO order.
            response.extras.setdefault("rid", rid)
        return response

    def _execute_followup(self, user_id: str, message: Followup) -> None:
        round_no = self.tick()
        if self.attack is not None:
            self.attack.apply_followup(self, user_id, message, round_no)
            return
        self.protocol.handle_followup(
            user_id, message, self.state, round_no=round_no)

    # -- single-message application (threaded wire path, replay) ----------

    def apply_request(self, user_id: str, message: Request) -> Response:
        """Dedup-check, log, and execute one request (caller serialised)."""
        rid = request_id(message)
        if rid is not None:
            cached = self.dedup.lookup(user_id, rid)
            if cached is not None:
                # A retry of an operation that already executed: return
                # the recorded response so the write is never applied
                # twice and the client's register chain stays intact.
                if _obs.enabled:
                    _DEDUP_HITS.inc(user=user_id)
                return cached
        if self.store is not None:
            self.store.wal_append(message)
            if _obs.enabled:
                _WAL_APPENDS.inc()
        response = self._execute_request(user_id, message)
        if rid is not None:
            self.dedup.record(user_id, rid, response)
        if self.replicator is not None:
            self.replicator.observe(self)
        self._after_logged_message()
        return response

    def apply_followup(self, user_id: str, message: Followup) -> None:
        """Log and absorb one follow-up message (caller serialised)."""
        if self.store is not None:
            self.store.wal_append(message)
            if _obs.enabled:
                _WAL_APPENDS.inc()
        self._execute_followup(user_id, message)
        self._after_logged_message()

    # -- batched application (async wire path) ------------------------------

    def apply_batch(self, entries: list[tuple[str, Request]]) -> list[Response]:
        """Execute a batch of requests with amortised durability + hashing.

        ``entries`` is ``[(user_id, request), ...]`` in execution order.
        Costs amortised across the batch:

        * **one** WAL flush+fsync covers every fresh request (each is
          still appended *before* any of them executes);
        * **one** Merkle dirty-path pass recomputes the root digest over
          all leaves the batch touched;
        * for a Protocol I signing run (one user, deferred follow-ups)
          the server blocks -- and the operating client signs -- once.

        Returns the responses aligned with ``entries``.  Duplicate
        request ids (dedup hits and intra-batch retries) are answered
        from the recorded response, never re-executed.
        """
        plan: list[tuple[str, object]] = []
        staged: set[tuple[str, str]] = set()
        fresh: list[tuple[str, Request]] = []
        for user_id, message in entries:
            rid = request_id(message)
            if rid is not None:
                cached = self.dedup.lookup(user_id, rid)
                if cached is not None:
                    if _obs.enabled:
                        _DEDUP_HITS.inc(user=user_id)
                    plan.append(("cached", cached))
                    continue
                if (user_id, rid) in staged:
                    # The same id twice in one batch (a client retried
                    # while the original was still queued): answer the
                    # second from the table after the first executes.
                    plan.append(("dup", (user_id, rid)))
                    continue
                staged.add((user_id, rid))
            plan.append(("exec", len(fresh)))
            fresh.append((user_id, message))

        if fresh and self._is_signing_run(fresh):
            # Stamp every request but the last *before* logging, so WAL
            # replay reconstructs the identical deferred-followup run.
            for _user, message in fresh[:-1]:
                message.extras[DEFER_FOLLOWUP_KEY] = True

        if self.store is not None and fresh:
            for _user, message in fresh:
                self.store.wal_append(message, sync=False)
                if _obs.enabled:
                    _WAL_APPENDS.inc()
            self.store.wal_sync()

        executed: list[Response] = []
        for user_id, message in fresh:
            response = self._execute_request(user_id, message)
            rid = request_id(message)
            if rid is not None:
                self.dedup.record(user_id, rid, response)
            # Replication deposits are per-operation (a client confirms
            # each verified (ctr, root) pair), so in replicated mode the
            # batch pays one lazy dirty-path root recompute per op here
            # instead of amortising them all into refresh_roots() below.
            if self.replicator is not None:
                self.replicator.observe(self)
            executed.append(response)

        if fresh:
            recomputed = self.refresh_roots()
            if _obs.enabled:
                _BATCHES.inc()
                _BATCH_SIZE.observe(len(fresh))
                _BATCH_ROOT_NODES.observe(recomputed)
            self._ops_since_snapshot += len(fresh)
            self._maybe_snapshot()

        responses: list[Response] = []
        for kind, payload in plan:
            if kind == "cached":
                responses.append(payload)
            elif kind == "exec":
                responses.append(executed[payload])
            else:  # "dup"
                user_id, rid = payload
                responses.append(self.dedup.lookup(user_id, rid))
        return responses

    def _is_signing_run(self, fresh: list[tuple[str, Request]]) -> bool:
        """Whether this batch is a Protocol I-style signing run: a
        blocking protocol that supports deferred follow-ups, fed more
        than one request from a single user."""
        if len(fresh) < 2:
            return False
        if not getattr(self.protocol, "supports_deferred_followup", False):
            return False
        first_user = fresh[0][0]
        return all(user == first_user for user, _message in fresh)

    def refresh_roots(self) -> int:
        """One batched dirty-path Merkle pass over every state branch;
        returns the number of nodes recomputed.

        In forest mode only dirty shard paths plus the top tree are
        touched; ``server.dirty_shards`` records how many shards each
        pass actually had to visit."""
        recomputed = 0
        observing = _obs.enabled
        for state in self.states.values():
            mtree = state.database.mtree
            if observing:
                dirty = getattr(mtree, "dirty_shard_count", None)
                if dirty is not None:
                    _DIRTY_SHARDS.observe(dirty)
            _root, nodes = mtree.refresh_root()
            recomputed += nodes
        return recomputed

    # -- snapshots ---------------------------------------------------------

    def _after_logged_message(self) -> None:
        if self.store is None:
            return
        self._ops_since_snapshot += 1
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        if self.store is None:
            return
        if self._ops_since_snapshot >= self.snapshot_every:
            try:
                self.snapshot()
            except (StorageError, OSError):
                # A failed periodic checkpoint (ENOSPC, EIO) must not
                # take the server down: the WAL is intact and every
                # acked write is replayable from it.  Back off, keep
                # serving, retry a quarter-interval later.  Bootstrap
                # and operator-requested snapshots still propagate --
                # only the opportunistic path is survivable.
                if _obs.enabled:
                    _SNAPSHOT_FAILURES.inc()
                self._ops_since_snapshot = (
                    self.snapshot_every - max(1, self.snapshot_every // 4))

    def snapshot(self) -> None:
        """Write a snapshot now (durable mode only); truncates the WAL."""
        if self.store is None:
            return
        if self.attack is not None:
            # A snapshot persists only the main branch and truncates the
            # WAL beneath any Byzantine forks; replaying from it could
            # not reconstruct them (ticks restart at the snapshot).  In
            # Byzantine mode the genesis-anchored WAL is the sole truth.
            return
        self.store.write_snapshot(self.state, self.dedup.export())
        self._ops_since_snapshot = 0
        if _obs.enabled:
            _SNAPSHOTS.inc()

    # -- shared plumbing ---------------------------------------------------

    def tick(self) -> int:
        self._round += 1
        return self._round

    @property
    def round(self) -> int:
        return self._round

    def blocked_for(self, user_id: str) -> bool:
        """Whether this user's next request must wait.

        Honest servers have one history; a Byzantine server routes the
        check through the branch the attack would serve this user from,
        so a forked victim blocks on its own branch's pending follow-up
        rather than the main branch's.
        """
        if self.attack is not None:
            state = self.attack.route_state(self, user_id, self._round + 1)
            return self.protocol.blocked(state)
        return self.protocol.blocked(self.state)

    def all_unblocked(self) -> bool:
        return all(not self.protocol.blocked(s) for s in self.states.values())

    def close_store(self) -> None:
        if self.replicator is not None:
            self.replicator.close()
        if self.store is not None:
            self.store.close()
