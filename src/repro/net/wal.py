"""Crash safety for the TCP server: write-ahead log + snapshots.

The trust anchor the whole system hangs off is the root digest, and the
root digest commits to the *exact tree shape* -- so recovery cannot be
"rebuild from the entry set"; it has to replay the identical operation
sequence onto the identical starting shape.  This module gives the
server that property with two files in a data directory:

``state.snapshot``
    The Merkle tree (via :mod:`repro.mtree.persistence`, shape-exact)
    plus the protocol metadata (``ctr``, ``meta``, the request-ID dedup
    table) and the WAL hash-chain head, all wire-encoded.  Written
    atomically (tmp + rename), so a crash mid-snapshot leaves the
    previous snapshot intact.

``wal.log``
    One record per request accepted since the last snapshot, appended
    and fsynced *before* the request is executed.  Each record is
    ``len(4B) || wire(Request) || chain(32B)`` where
    ``chain_i = h(chain_{i-1} || payload_i)`` anchors the record to the
    snapshot's recorded chain head.  On recovery the records are
    re-executed in order, which -- execution being deterministic --
    reproduces the pre-crash state bit-for-bit, dedup table included.

Failure semantics of the chain:

* a *truncated tail* record (the process died mid-append) is discarded
  silently -- the request was never acknowledged, so dropping it is
  correct, and the file is trimmed back to the last complete record;
* any *other* corruption (bit flips, edited payloads, spliced records)
  breaks the hash chain and raises :class:`WalError`.  Recovery refuses
  to run, so a tampered log cannot be laundered into a "recovered"
  state that silently forks the history clients have verified.
"""

from __future__ import annotations

import os
import struct

from repro.crypto.hashing import DIGEST_SIZE, Digest, hash_bytes
from repro.mtree.persistence import PersistenceError, dump_database, load_database
from repro.protocols.base import Followup, Request
from repro.wire import WireError, decode, encode

SNAPSHOT_FILE = "state.snapshot"
WAL_FILE = "wal.log"

_SNAPSHOT_MAGIC = b"cvs-server-snapshot 1\n"
_CHAIN_DOMAIN = b"wal-chain"
_GENESIS_DOMAIN = b"wal-genesis"


class WalError(Exception):
    """Raised when the WAL or snapshot cannot be trusted for recovery."""


def chain_genesis(root: Digest) -> Digest:
    """The chain head a fresh (or freshly snapshotted) log starts from."""
    return hash_bytes(_GENESIS_DOMAIN + root.to_bytes())


def _chain_next(head: Digest, payload: bytes) -> Digest:
    return hash_bytes(_CHAIN_DOMAIN + head.to_bytes() + payload)


def _dedup_pairs(entry) -> list[tuple]:
    """Normalise a snapshot dedup entry to ordered (rid, response) pairs.

    Current snapshots store a *window* per user (list of pairs); PR 4
    snapshots stored exactly one ``[rid, response]`` pair.  Accept both
    so a server upgraded in place recovers its old snapshot.
    """
    entry = list(entry)
    if entry and isinstance(entry[0], str):
        return [tuple(entry)]  # legacy single-entry form
    return [tuple(pair) for pair in entry]


class ServerStore:
    """The durable half of a :class:`~repro.net.server.TrustedCvsTcpServer`.

    Owns the snapshot and WAL files in ``data_dir`` and the running
    hash-chain head.  All methods must be called under the server's
    state lock; the store itself does no locking.
    """

    def __init__(self, data_dir: str, fsync: bool = True) -> None:
        self.data_dir = data_dir
        self.fsync = fsync
        os.makedirs(data_dir, exist_ok=True)
        self.snapshot_path = os.path.join(data_dir, SNAPSHOT_FILE)
        self.wal_path = os.path.join(data_dir, WAL_FILE)
        self._wal_handle = None
        self._chain = Digest.zero()  # set by load()/write_snapshot()

    # -- snapshot ----------------------------------------------------------

    def write_snapshot(self, state, dedup: dict) -> None:
        """Atomically persist the full server state; truncate the WAL.

        ``state`` is a :class:`~repro.protocols.base.ServerState`;
        ``dedup`` maps user id -> ordered [(request id, Response), ...]
        (oldest first), the export format of
        :class:`~repro.net.core.DedupTable`.
        """
        root = state.database.root_digest()
        chain = chain_genesis(root)
        tree_blob = dump_database(state.database)
        meta_blob = encode({
            "ctr": state.ctr,
            "meta": state.meta,
            "dedup": {user: [list(pair) for pair in pairs]
                      for user, pairs in dedup.items()},
            "root": root,
            "chain": chain,
        })
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_SNAPSHOT_MAGIC)
            handle.write(struct.pack(">I", len(tree_blob)))
            handle.write(tree_blob)
            handle.write(struct.pack(">I", len(meta_blob)))
            handle.write(meta_blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._reset_wal()
        self._chain = chain

    def load_snapshot(self):
        """Read the snapshot; returns ``(database, ctr, meta, dedup, chain)``
        or ``None`` when no snapshot exists yet."""
        if not os.path.isfile(self.snapshot_path):
            return None
        with open(self.snapshot_path, "rb") as handle:
            blob = handle.read()
        if not blob.startswith(_SNAPSHOT_MAGIC):
            raise WalError("bad snapshot header")
        position = len(_SNAPSHOT_MAGIC)
        try:
            (tree_len,) = struct.unpack_from(">I", blob, position)
            position += 4
            tree_blob = blob[position:position + tree_len]
            if len(tree_blob) != tree_len:
                raise WalError("truncated snapshot (tree section)")
            position += tree_len
            (meta_len,) = struct.unpack_from(">I", blob, position)
            position += 4
            meta_blob = blob[position:position + meta_len]
            if len(meta_blob) != meta_len:
                raise WalError("truncated snapshot (meta section)")
        except struct.error as exc:
            raise WalError(f"truncated snapshot: {exc}") from exc
        try:
            database = load_database(tree_blob)
            fields = decode(meta_blob)
        except (PersistenceError, WireError) as exc:
            raise WalError(f"corrupt snapshot: {exc}") from exc
        if not isinstance(fields, dict):
            raise WalError("corrupt snapshot: meta section is not a dict")
        try:
            ctr = int(fields["ctr"])
            meta = dict(fields["meta"])
            dedup = {user: _dedup_pairs(entry)
                     for user, entry in dict(fields["dedup"]).items()}
            root = fields["root"]
            chain = fields["chain"]
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"corrupt snapshot: {exc}") from exc
        if database.root_digest() != root:
            raise WalError(
                "snapshot tree does not hash to its recorded root digest")
        if chain != chain_genesis(root):
            raise WalError("snapshot chain head does not match its root")
        return database, ctr, meta, dedup, chain

    # -- write-ahead log ---------------------------------------------------

    def wal_append(self, message: Request | Followup, sync: bool = True) -> None:
        """Durably log a request or follow-up *before* it is executed.

        ``sync=False`` buffers the record without forcing it to disk --
        the group-commit half of the batched path: append every request
        of a batch unsynced, then make them all durable with a single
        :meth:`wal_sync` before any of them executes.  The before-
        execution guarantee is unchanged; only the fsync is amortised.
        """
        payload = encode(message)
        self._chain = _chain_next(self._chain, payload)
        if self._wal_handle is None:
            self._wal_handle = open(self.wal_path, "ab")
        handle = self._wal_handle
        handle.write(struct.pack(">I", len(payload)))
        handle.write(payload)
        handle.write(self._chain.to_bytes())
        if sync:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def wal_sync(self) -> None:
        """Flush (and fsync) everything appended with ``sync=False``."""
        if self._wal_handle is None:
            return
        self._wal_handle.flush()
        if self.fsync:
            os.fsync(self._wal_handle.fileno())

    def wal_records(self, chain: Digest) -> list[Request | Followup]:
        """Read back every complete, chain-verified record.

        A truncated final record (crash mid-append) is trimmed off the
        file; any other inconsistency raises :class:`WalError`.
        """
        if not os.path.isfile(self.wal_path):
            self._chain = chain
            return []
        with open(self.wal_path, "rb") as handle:
            blob = handle.read()
        records: list[Request | Followup] = []
        position = 0
        good_end = 0
        while position < len(blob):
            if position + 4 > len(blob):
                break  # truncated tail: mid length prefix
            (length,) = struct.unpack_from(">I", blob, position)
            end = position + 4 + length + DIGEST_SIZE
            if end > len(blob):
                break  # truncated tail: mid payload or mid chain digest
            payload = blob[position + 4:position + 4 + length]
            recorded = blob[position + 4 + length:end]
            chain = _chain_next(chain, payload)
            if chain.to_bytes() != recorded:
                raise WalError(
                    f"WAL record {len(records)} breaks the hash chain: "
                    "the log was corrupted or tampered with")
            try:
                message = decode(payload)
            except WireError as exc:
                raise WalError(f"WAL record {len(records)} undecodable: {exc}") from exc
            if not isinstance(message, (Request, Followup)):
                raise WalError(f"WAL record {len(records)} is not a request")
            records.append(message)
            position = good_end = end
        if good_end < len(blob):
            # Trim the torn tail so the next append starts at a record
            # boundary (the request it held was never acknowledged).
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(good_end)
        self._chain = chain
        return records

    # -- lifecycle ---------------------------------------------------------

    def set_chain(self, chain: Digest) -> None:
        self._chain = chain

    def _reset_wal(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        with open(self.wal_path, "wb"):
            pass

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
