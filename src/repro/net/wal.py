"""Crash safety for the TCP server: write-ahead log + snapshots.

The trust anchor the whole system hangs off is the root digest, and the
root digest commits to the *exact tree shape* -- so recovery cannot be
"rebuild from the entry set"; it has to replay the identical operation
sequence onto the identical starting shape.  This module gives the
server that property through two interchangeable stores:

:class:`ServerStore` (``--backend file``)
    ``state.snapshot`` -- the whole Merkle store (via
    :mod:`repro.mtree.persistence`, shape-exact) plus protocol metadata
    (``ctr``, ``meta``, the request-ID dedup table) and the WAL
    hash-chain head, written with the full tmp + fsync + rename +
    dir-fsync dance (:func:`repro.storage.atomic.atomic_write`).
:class:`PagedServerStore` (``--backend sqlite``)
    The disk engine for stores too large to rewrite per snapshot: each
    shard tree is serialised into checksummed 32 KB page streams in a
    :class:`~repro.storage.pagestore.SqlitePageStore`, a checkpoint
    rewrites only the shards dirtied since the last one (one sqlite
    transaction), and the WAL is *rotated* into a retained segment file
    instead of truncated.  A shard whose pages fail verification on
    recovery is quarantined and repaired from its previous generation
    plus a replay of exactly the retained segment that produced it --
    never trusted as-is, never silently rebuilt.

Both share the WAL: one record per request accepted since the last
snapshot, appended and fsynced *before* the request is executed.  Each
record is ``len(4B) || wire(Request) || chain(32B)`` where
``chain_i = h(chain_{i-1} || payload_i)`` anchors the record to the
snapshot's recorded chain head.  On recovery the records are
re-executed in order, which -- execution being deterministic --
reproduces the pre-crash state bit-for-bit, dedup table included.

Failure semantics of the chain:

* a *truncated tail* record (the process died mid-append) is discarded
  silently -- the request was never acknowledged, so dropping it is
  correct, and the file is trimmed back to the last complete record;
* a *stale* WAL -- the process died after the snapshot rename but
  before the WAL reset, so the log still chains from the *previous*
  snapshot -- is recognised only if the entire file verifies against
  the ``prev_chain`` head the snapshot recorded, and is then discarded
  (its every record is already inside the snapshot); anything less than
  a full match is treated as tamper;
* any *other* corruption (bit flips, edited payloads, spliced records)
  breaks the hash chain and raises :class:`WalError`.  Recovery refuses
  to run, so a tampered log cannot be laundered into a "recovered"
  state that silently forks the history clients have verified.
"""

from __future__ import annotations

import os
import struct

from repro.crypto.hashing import DIGEST_SIZE, Digest, hash_bytes
from repro.mtree.database import VerifiedDatabase
from repro.mtree.forest import MerkleForest, StoreSpec
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.persistence import PersistenceError, dump_database, load_database
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import Followup, Request
from repro.storage.atomic import DirLock, atomic_write
from repro.storage.engine import (
    LoadStats,
    load_shard_tree,
    replay_data_ops,
    write_shard_pages,
)
from repro.storage.faults import REAL_IO, IoShim
from repro.storage.pagestore import StorageError, open_page_store
from repro.wire import WireError, decode, encode

SNAPSHOT_FILE = "state.snapshot"
WAL_FILE = "wal.log"
SEGMENT_PREFIX = "wal-seg."
SEGMENT_SUFFIX = ".log"

_SNAPSHOT_MAGIC = b"cvs-server-snapshot 1\n"
_CHAIN_DOMAIN = b"wal-chain"
_GENESIS_DOMAIN = b"wal-genesis"
_MANIFEST_KEY = "checkpoint"
_MANIFEST_FORMAT = "cvs-paged-store 1"

_CHECKPOINTS = _registry.counter(
    "storage.checkpoints", "paged-store checkpoints committed")
_WAL_ROTATIONS = _registry.counter(
    "storage.wal_rotations", "WAL files rotated into retained segments")
_STALE_WALS = _registry.counter(
    "storage.stale_wals", "verified-stale WALs discarded during recovery")
_QUARANTINES = _registry.counter(
    "storage.quarantines", "shards quarantined after failing verification")
_REPAIRS = _registry.counter(
    "storage.repairs", "quarantined shards repaired from segment replay")
_SEGMENTS_DROPPED = _registry.counter(
    "storage.segments_dropped", "retained WAL segments garbage-collected")


class WalError(Exception):
    """Raised when the WAL or snapshot cannot be trusted for recovery."""


def chain_genesis(root: Digest) -> Digest:
    """The chain head a fresh (or freshly snapshotted) log starts from."""
    return hash_bytes(_GENESIS_DOMAIN + root.to_bytes())


def _chain_next(head: Digest, payload: bytes) -> Digest:
    return hash_bytes(_CHAIN_DOMAIN + head.to_bytes() + payload)


def _dedup_pairs(entry) -> list[tuple]:
    """Normalise a snapshot dedup entry to ordered (rid, response) pairs.

    Current snapshots store a *window* per user (list of pairs); PR 4
    snapshots stored exactly one ``[rid, response]`` pair.  Accept both
    so a server upgraded in place recovers its old snapshot.
    """
    entry = list(entry)
    if entry and isinstance(entry[0], str):
        return [tuple(entry)]  # legacy single-entry form
    return [tuple(pair) for pair in entry]


def _parse_records(blob: bytes) -> tuple[list[tuple[bytes, bytes]], int]:
    """Split a WAL blob into complete ``(payload, stored_chain)`` records.

    Returns the records plus the offset where the last complete record
    ends; bytes past it are a torn tail (the process died mid-append).
    """
    records: list[tuple[bytes, bytes]] = []
    position = 0
    good_end = 0
    while position < len(blob):
        if position + 4 > len(blob):
            break  # truncated tail: mid length prefix
        (length,) = struct.unpack_from(">I", blob, position)
        end = position + 4 + length + DIGEST_SIZE
        if end > len(blob):
            break  # truncated tail: mid payload or mid chain digest
        payload = blob[position + 4:position + 4 + length]
        stored = blob[position + 4 + length:end]
        records.append((payload, stored))
        position = good_end = end
    return records, good_end


def _verify_records(records: list[tuple[bytes, bytes]],
                    chain: Digest) -> tuple[list[Request | Followup], Digest]:
    """Chain-verify and decode parsed records starting from ``chain``."""
    messages: list[Request | Followup] = []
    for index, (payload, stored) in enumerate(records):
        chain = _chain_next(chain, payload)
        if chain.to_bytes() != stored:
            raise WalError(
                f"WAL record {index} breaks the hash chain: "
                "the log was corrupted or tampered with")
        try:
            message = decode(payload)
        except WireError as exc:
            raise WalError(f"WAL record {index} undecodable: {exc}") from exc
        if not isinstance(message, (Request, Followup)):
            raise WalError(f"WAL record {index} is not a request")
        messages.append(message)
    return messages, chain


def _is_stale_wal(records: list[tuple[bytes, bytes]],
                  prev_chain: Digest) -> bool:
    """Whether a chain-mismatched WAL is the *previous* epoch's log.

    A crash between the snapshot becoming durable and the WAL reset
    leaves the old log in place.  That exact file -- and, by collision
    resistance, only that file -- satisfies two checks without knowing
    its genesis: every adjacent pair obeys the chain recurrence, and
    the final stored head equals the ``prev_chain`` the snapshot
    recorded.  Anything else is corruption, not staleness.
    """
    if not records:
        return False
    for (_, prev_stored), (payload, stored) in zip(records, records[1:]):
        expected = _chain_next(Digest(prev_stored), payload)
        if expected.to_bytes() != stored:
            return False
    return records[-1][1] == prev_chain.to_bytes()


class ServerStore:
    """The durable half of a :class:`~repro.net.server.TrustedCvsTcpServer`.

    Owns the snapshot and WAL files in ``data_dir`` and the running
    hash-chain head.  All methods must be called under the server's
    state lock; the store itself does no locking of calls -- ``lock``
    guards the *directory* (flock), so a second server process cannot
    interleave appends into the same WAL.
    """

    backend = "file"

    def __init__(self, data_dir: str, fsync: bool = True,
                 io: IoShim | None = None, lock: bool = False) -> None:
        self.data_dir = data_dir
        self.fsync = fsync
        self.io = io or REAL_IO
        os.makedirs(data_dir, exist_ok=True)
        self._lock = DirLock(data_dir) if lock else None
        self.snapshot_path = os.path.join(data_dir, SNAPSHOT_FILE)
        self.wal_path = os.path.join(data_dir, WAL_FILE)
        self._wal_handle = None
        self._chain = Digest.zero()  # set by load()/write_snapshot()
        #: the pre-snapshot chain head the last loaded snapshot recorded
        #: (None for snapshots written before this field existed).
        self._prev_chain: Digest | None = None
        #: how many verified-stale WALs recovery has discarded.
        self.stale_wals_discarded = 0

    # -- snapshot ----------------------------------------------------------

    def write_snapshot(self, state, dedup: dict) -> None:
        """Atomically persist the full server state; reset the WAL.

        ``state`` is a :class:`~repro.protocols.base.ServerState`;
        ``dedup`` maps user id -> ordered [(request id, Response), ...]
        (oldest first), the export format of
        :class:`~repro.net.core.DedupTable`.
        """
        root = state.database.root_digest()
        chain = chain_genesis(root)
        tree_blob = dump_database(state.database)
        meta_blob = encode({
            "ctr": state.ctr,
            "meta": state.meta,
            "dedup": {user: [list(pair) for pair in pairs]
                      for user, pairs in dedup.items()},
            "root": root,
            "chain": chain,
            # The running head at snapshot time: lets recovery prove a
            # leftover WAL is merely stale (crash before the reset
            # below) rather than tampered.
            "prev_chain": self._chain,
        })
        blob = (_SNAPSHOT_MAGIC
                + struct.pack(">I", len(tree_blob)) + tree_blob
                + struct.pack(">I", len(meta_blob)) + meta_blob)
        atomic_write(self.snapshot_path, blob, fsync=self.fsync, io=self.io)
        self.io.crash_point("snapshot:before-wal-reset")
        self._reset_wal()
        self._prev_chain = self._chain
        self._chain = chain

    def load_snapshot(self):
        """Read the snapshot; returns ``(database, ctr, meta, dedup, chain)``
        or ``None`` when no snapshot exists yet."""
        if not os.path.isfile(self.snapshot_path):
            return None
        blob = self.io.read_file(self.snapshot_path)
        if not blob.startswith(_SNAPSHOT_MAGIC):
            raise WalError("bad snapshot header")
        position = len(_SNAPSHOT_MAGIC)
        try:
            (tree_len,) = struct.unpack_from(">I", blob, position)
            position += 4
            tree_blob = blob[position:position + tree_len]
            if len(tree_blob) != tree_len:
                raise WalError("truncated snapshot (tree section)")
            position += tree_len
            (meta_len,) = struct.unpack_from(">I", blob, position)
            position += 4
            meta_blob = blob[position:position + meta_len]
            if len(meta_blob) != meta_len:
                raise WalError("truncated snapshot (meta section)")
        except struct.error as exc:
            raise WalError(f"truncated snapshot: {exc}") from exc
        try:
            database = load_database(tree_blob)
            fields = decode(meta_blob)
        except (PersistenceError, WireError) as exc:
            raise WalError(f"corrupt snapshot: {exc}") from exc
        if not isinstance(fields, dict):
            raise WalError("corrupt snapshot: meta section is not a dict")
        try:
            ctr = int(fields["ctr"])
            meta = dict(fields["meta"])
            dedup = {user: _dedup_pairs(entry)
                     for user, entry in dict(fields["dedup"]).items()}
            root = fields["root"]
            chain = fields["chain"]
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"corrupt snapshot: {exc}") from exc
        if database.root_digest() != root:
            raise WalError(
                "snapshot tree does not hash to its recorded root digest")
        if chain != chain_genesis(root):
            raise WalError("snapshot chain head does not match its root")
        prev_chain = fields.get("prev_chain")
        self._prev_chain = prev_chain if isinstance(prev_chain, Digest) else None
        return database, ctr, meta, dedup, chain

    # -- write-ahead log ---------------------------------------------------

    def wal_append(self, message: Request | Followup, sync: bool = True) -> None:
        """Durably log a request or follow-up *before* it is executed.

        ``sync=False`` buffers the record without forcing it to disk --
        the group-commit half of the batched path: append every request
        of a batch unsynced, then make them all durable with a single
        :meth:`wal_sync` before any of them executes.  The before-
        execution guarantee is unchanged; only the fsync is amortised.

        Fail-stop on I/O errors (ENOSPC, short writes): the in-memory
        chain head is rolled back and the file trimmed to the last good
        record, so a later retry -- or a clean shutdown -- continues
        from a consistent log instead of corrupting every subsequent
        append.
        """
        payload = encode(message)
        previous_chain = self._chain
        self._chain = _chain_next(self._chain, payload)
        if self._wal_handle is None:
            self._wal_handle = self.io.open(self.wal_path, "ab")
        handle = self._wal_handle
        good_size = handle.tell()
        record = (struct.pack(">I", len(payload)) + payload
                  + self._chain.to_bytes())
        self.io.crash_point("wal:append")
        try:
            handle.write(record)
            if sync:
                handle.flush()
                if self.fsync:
                    handle.fsync()
        except OSError:
            # Roll back: whatever prefix of the record reached the file
            # must not poison the next append's chain arithmetic.
            self._chain = previous_chain
            try:
                handle.close()
            except OSError:
                pass
            self._wal_handle = None
            try:
                self.io.truncate_file(self.wal_path, good_size)
            except OSError:
                pass
            raise

    def wal_sync(self) -> None:
        """Flush (and fsync) everything appended with ``sync=False``."""
        if self._wal_handle is None:
            return
        self._wal_handle.flush()
        if self.fsync:
            self._wal_handle.fsync()

    def wal_records(self, chain: Digest) -> list[Request | Followup]:
        """Read back every complete, chain-verified record.

        A truncated final record (crash mid-append) is trimmed off the
        file; a whole file proven stale against the snapshot's recorded
        ``prev_chain`` is discarded; any other inconsistency raises
        :class:`WalError`.
        """
        if not os.path.isfile(self.wal_path):
            self._chain = chain
            return []
        blob = self.io.read_file(self.wal_path)
        records, good_end = _parse_records(blob)
        try:
            messages, chain = _verify_records(records, chain)
        except WalError:
            if self._prev_chain is not None and \
                    _is_stale_wal(records, self._prev_chain):
                # The crash hit between the snapshot rename and the WAL
                # reset: every record here is already *inside* the
                # snapshot.  Finish the interrupted reset and recover
                # with nothing to replay.
                self._discard_stale_wal()
                self.stale_wals_discarded += 1
                if _obs.enabled:
                    _STALE_WALS.inc()
                self._chain = chain
                return []
            raise
        if good_end < len(blob):
            # Trim the torn tail so the next append starts at a record
            # boundary (the request it held was never acknowledged).
            self.io.truncate_file(self.wal_path, good_end)
        self._chain = chain
        return messages

    def _discard_stale_wal(self) -> None:
        """Complete the interrupted post-snapshot WAL reset."""
        self._reset_wal()

    # -- lifecycle ---------------------------------------------------------

    def set_chain(self, chain: Digest) -> None:
        self._chain = chain

    def _reset_wal(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        handle = self.io.open(self.wal_path, "wb")
        try:
            if self.fsync:
                handle.fsync()
        finally:
            handle.close()

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None


class PagedServerStore(ServerStore):
    """Disk-backed store: checksummed shard pages + WAL segment rotation.

    The checkpoint/compaction cycle (:meth:`write_snapshot`):

    1. serialise every shard dirtied since the last checkpoint into
       fresh page streams under generation ``G`` and commit them,
       together with the updated manifest, in **one** page-store
       transaction -- a crash anywhere before the commit leaves the
       previous checkpoint fully intact and the WAL unrotated;
    2. rotate ``wal.log`` to ``wal-seg.G.log`` (rename + dir fsync) and
       start a fresh log chained from the new genesis;
    3. drop page generations and WAL segments nothing references any
       more.  A shard rewritten at ``G`` keeps its previous generation
       ``P`` and the manifest keeps segment ``G``'s start chain: the
       shard was clean between its two rewrites, so ``P``'s pages plus
       segment ``G``'s data operations are exactly the recipe
       :meth:`load_snapshot` uses to repair it if its pages rot.

    Recovery order of trust: page checksum -> recomputed shard root ->
    manifest root -> WAL chain.  A shard failing any of the first two is
    quarantined and repaired; a repair that does not reproduce the
    manifest's recorded shard root is tamper and recovery refuses.
    """

    backend = "sqlite"

    def __init__(self, data_dir: str, fsync: bool = True,
                 io: IoShim | None = None, lock: bool = False) -> None:
        super().__init__(data_dir, fsync=fsync, io=io, lock=lock)
        self.pages = open_page_store(data_dir, fsync=fsync, io=self.io)
        self._manifest: dict | None = self._load_manifest()
        #: streaming-load accounting for the most recent load_snapshot.
        self.load_stats = LoadStats()
        #: shards quarantined + repaired during the most recent load.
        self.repaired_shards: list[int] = []

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> dict | None:
        blob = self.pages.get_meta(_MANIFEST_KEY)
        if blob is None:
            return None
        try:
            manifest = decode(blob)
        except WireError as exc:
            raise WalError(f"corrupt checkpoint manifest: {exc}") from exc
        if not isinstance(manifest, dict) or \
                manifest.get("format") != _MANIFEST_FORMAT:
            raise WalError("corrupt checkpoint manifest: bad format tag")
        return manifest

    def _segment_path(self, gen: int) -> str:
        return os.path.join(
            self.data_dir, f"{SEGMENT_PREFIX}{gen}{SEGMENT_SUFFIX}")

    def _newest_segment_gen(self) -> int:
        """Highest generation with a retained segment file on disk."""
        newest = -1
        try:
            names = os.listdir(self.data_dir)
        except OSError:
            return newest
        for name in names:
            if not (name.startswith(SEGMENT_PREFIX)
                    and name.endswith(SEGMENT_SUFFIX)):
                continue
            try:
                gen = int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
            except ValueError:
                continue
            newest = max(newest, gen)
        return newest

    # -- checkpoint + compaction -------------------------------------------

    def write_snapshot(self, state, dedup: dict) -> None:
        """Incremental checkpoint: rewrite dirty shards, rotate the WAL."""
        database = state.database
        mtree = database.mtree
        spec = database.spec
        root = database.root_digest()
        chain = chain_genesis(root)
        old = self._manifest
        new_gen = 0 if old is None else int(old["gen"]) + 1

        if isinstance(mtree, MerkleForest):
            shard_trees = [mtree.shard_tree(i) for i in range(spec.shards)]
            dirty = set(mtree.checkpoint_dirty_shards())
        else:
            shard_trees = [mtree]
            dirty = {0} if mtree.checkpoint_dirty else set()
        if old is None:
            dirty = set(range(spec.shards))

        old_shards = {} if old is None else \
            {int(rec["shard"]): rec for rec in old["shards"]}
        shard_records = []
        dropped: list[tuple[int, int]] = []
        self.pages.begin()
        try:
            for index in range(spec.shards):
                previous = old_shards.get(index)
                if index in dirty or previous is None:
                    tree = shard_trees[index]
                    counts = write_shard_pages(
                        self.pages, index, new_gen, tree.tree)
                    record = {
                        "shard": index,
                        "gen": new_gen,
                        "root": tree.root_digest(),
                        "prev_gen": -1 if previous is None
                        else int(previous["gen"]),
                        "prev_root": Digest.zero() if previous is None
                        else previous["root"],
                        "counts": counts,
                    }
                    if previous is not None and int(previous["prev_gen"]) >= 0:
                        # The generation before the one that just
                        # became "previous" is now unreachable.
                        self.pages.drop_generation(
                            index, int(previous["prev_gen"]))
                        dropped.append((index, int(previous["prev_gen"])))
                else:
                    record = dict(previous)
                shard_records.append(record)

            referenced = {int(rec["gen"]) for rec in shard_records}
            old_segments = {} if old is None else dict(old["segments"])
            segments = {key: value for key, value in old_segments.items()
                        if int(key) in referenced}
            if old is not None:
                # The log being rotated becomes segment ``new_gen``; it
                # chains from the previous checkpoint's genesis head.
                segments[str(new_gen)] = old["chain"]

            manifest = {
                "format": _MANIFEST_FORMAT,
                "gen": new_gen,
                "root": root,
                "chain": chain,
                "prev_chain": self._chain,
                "spec": spec.to_wire(),
                "ctr": state.ctr,
                "meta": state.meta,
                "dedup": {user: [list(pair) for pair in pairs]
                          for user, pairs in dedup.items()},
                "shards": shard_records,
                "segments": segments,
            }
            self.pages.put_meta(_MANIFEST_KEY, encode(manifest))
            self.io.crash_point("checkpoint:before-commit")
            self.pages.commit()
        except BaseException:
            # Covers SimulatedCrash too: the in-process stand-in for
            # what sqlite's journal would do after a real kill.
            self.pages.rollback()
            raise
        self.io.crash_point("checkpoint:after-commit")

        self._rotate_wal(new_gen)
        self._gc_segments({int(k) for k in manifest["segments"]})
        self._manifest = manifest
        self._prev_chain = self._chain
        self._chain = chain
        if isinstance(mtree, MerkleForest):
            mtree.clear_checkpoint_dirty()
        else:
            mtree.checkpoint_dirty = False
        if _obs.enabled:
            _CHECKPOINTS.inc()

    def _rotate_wal(self, gen: int) -> None:
        """Rename the just-checkpointed log into its retained segment."""
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        if not os.path.isfile(self.wal_path) or \
                os.path.getsize(self.wal_path) == 0:
            return  # nothing to retain (manual checkpoint with no ops)
        self.io.crash_point("compaction:before-rotate")
        self.io.replace(self.wal_path, self._segment_path(gen))
        self.io.crash_point("compaction:between-rename-and-dirfsync")
        if self.fsync:
            self.io.fsync_dir(self.data_dir)
        if _obs.enabled:
            _WAL_ROTATIONS.inc()

    def _gc_segments(self, referenced: set[int]) -> None:
        """Delete retained segments no shard's repair recipe needs."""
        try:
            names = os.listdir(self.data_dir)
        except OSError:
            return
        removed = False
        for name in names:
            if not (name.startswith(SEGMENT_PREFIX)
                    and name.endswith(SEGMENT_SUFFIX)):
                continue
            try:
                gen = int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
            except ValueError:
                continue
            if gen in referenced:
                continue
            self.io.crash_point("compaction:mid-segment-gc")
            try:
                self.io.remove(os.path.join(self.data_dir, name))
                removed = True
                if _obs.enabled:
                    _SEGMENTS_DROPPED.inc()
            except OSError:
                pass  # retry at the next checkpoint
        if removed and self.fsync:
            self.io.fsync_dir(self.data_dir)

    # -- recovery ----------------------------------------------------------

    def load_snapshot(self):
        """Stream the checkpoint back; quarantine + repair bad shards.

        Returns ``(database, ctr, meta, dedup, chain)`` or ``None`` for
        a fresh directory, like the base class.  Memory stays bounded:
        shard pages are parsed as they arrive
        (:attr:`load_stats` ``.max_resident_page_bytes`` proves it).
        """
        manifest = self._load_manifest()
        self._manifest = manifest
        # A retained segment is created only by the rotation that
        # *follows* a durable manifest commit -- so a segment newer than
        # the manifest proves the page store lost a checkpoint it
        # reported committed (a lying disk).  The acked writes of that
        # epoch live in the newer segment, but the chain head needed to
        # trust them went down with the manifest: refuse loudly instead
        # of silently serving the older root.
        newest_segment = self._newest_segment_gen()
        manifest_gen = -1 if manifest is None else int(manifest["gen"])
        if newest_segment > manifest_gen:
            raise WalError(
                f"retained WAL segment {newest_segment} is newer than the "
                f"checkpoint manifest (generation {manifest_gen}): the page "
                "store lost a checkpoint it reported durable")
        if manifest is None:
            return None
        try:
            spec = StoreSpec.coerce(manifest["spec"])
            gen = int(manifest["gen"])
            root = manifest["root"]
            chain = manifest["chain"]
            ctr = int(manifest["ctr"])
            meta = dict(manifest["meta"])
            dedup = {user: _dedup_pairs(entry)
                     for user, entry in dict(manifest["dedup"]).items()}
            shard_records = list(manifest["shards"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"corrupt checkpoint manifest: {exc}") from exc
        if chain != chain_genesis(root):
            raise WalError("manifest chain head does not match its root")
        if len(shard_records) != spec.shards:
            raise WalError("manifest shard records disagree with the spec")

        stats = LoadStats()
        self.load_stats = stats
        self.repaired_shards = []
        shard_trees: list[MerkleBPlusTree] = []
        for record in shard_records:
            index = int(record["shard"])
            shard_gen = int(record["gen"])
            expected = record["root"]
            try:
                tree = load_shard_tree(
                    self.pages, index, shard_gen,
                    expected_root=expected, stats=stats)
            except (StorageError, PersistenceError) as exc:
                if _obs.enabled:
                    _QUARANTINES.inc(shard=str(index))
                tree = self._repair_shard(record, spec, manifest, exc)
                self.repaired_shards.append(index)
                if _obs.enabled:
                    _REPAIRS.inc(shard=str(index))
            shard_trees.append(tree)

        database = self._assemble_database(spec, shard_trees)
        if database.root_digest() != root:
            raise WalError(
                "checkpoint shards do not hash to the manifest's top root")
        prev_chain = manifest.get("prev_chain")
        self._prev_chain = prev_chain if isinstance(prev_chain, Digest) else None
        return database, ctr, meta, dedup, chain

    def _assemble_database(self, spec: StoreSpec,
                           shard_trees: list[MerkleBPlusTree]) -> VerifiedDatabase:
        """Rebuild the in-memory store around the loaded shard trees.

        The top tree is not persisted at all: its shape is a
        deterministic function of the shard count, so it is rebuilt
        from the verified shard roots (exactly as the file backend's
        ``load_forest`` does).
        """
        database = VerifiedDatabase(
            order=spec.order, shards=spec.shards, top_order=spec.top_order)
        if spec.shards == 1:
            database._mtree = shard_trees[0]
            return database
        forest = database.mtree
        for index, tree in enumerate(shard_trees):
            forest._shards[index] = tree
            forest._dirty.add(index)
        forest._sync_top()
        return database

    def _repair_shard(self, record: dict, spec: StoreSpec, manifest: dict,
                      cause: Exception) -> MerkleBPlusTree:
        """Rebuild a quarantined shard: previous generation + segment replay.

        Raises :class:`WalError` when the recipe cannot reproduce the
        manifest's recorded shard root -- that is tamper (or a double
        fault), and it is *reported*, never masked by serving the
        damaged pages or a silently rebuilt tree.
        """
        index = int(record["shard"])
        shard_gen = int(record["gen"])
        prev_gen = int(record["prev_gen"])
        expected = record["root"]
        if prev_gen >= 0:
            try:
                tree = load_shard_tree(
                    self.pages, index, prev_gen,
                    expected_root=record["prev_root"], stats=self.load_stats)
            except (StorageError, PersistenceError) as double_fault:
                raise WalError(
                    f"shard {index} is quarantined ({cause}) and its "
                    f"previous generation {prev_gen} is also damaged "
                    f"({double_fault}); cannot repair") from double_fault
        else:
            tree = MerkleBPlusTree(order=spec.order)
        segment_path = self._segment_path(shard_gen)
        if os.path.isfile(segment_path):
            start = dict(manifest["segments"]).get(str(shard_gen))
            if not isinstance(start, Digest):
                raise WalError(
                    f"shard {index} needs segment {shard_gen} for repair "
                    "but the manifest records no start chain for it")
            messages = self._read_segment(segment_path, start)
            replay_data_ops(tree, messages, index, spec.shards)
        actual, _nodes = tree.refresh_root()
        if actual != expected:
            raise WalError(
                f"shard {index} quarantined ({cause}) and its repair from "
                f"generation {prev_gen} + segment {shard_gen} replays to "
                f"root {actual.short()}..., but the manifest records "
                f"{expected.short()}...: the pages or the segment were "
                "tampered with")
        # Re-materialise the repaired pages so the *next* restart does
        # not need the segment again.
        self.pages.begin()
        try:
            self.pages.drop_generation(index, shard_gen)
            # drop_generation stages deletes by (shard, gen) pair only;
            # rewrite the verified pages under the same generation.
            write_shard_pages(self.pages, index, shard_gen, tree.tree)
            self.pages.commit()
        except BaseException:
            self.pages.rollback()
            raise
        return tree

    def _read_segment(self, path: str,
                      start: Digest) -> list[Request | Followup]:
        """Chain-verify a retained segment from its recorded start head."""
        blob = self.io.read_file(path)
        records, good_end = _parse_records(blob)
        try:
            messages, _chain = _verify_records(records, start)
        except WalError as exc:
            raise WalError(
                f"retained WAL segment {os.path.basename(path)} fails "
                f"verification: {exc}") from exc
        return messages

    def _discard_stale_wal(self) -> None:
        """Finish the rotation a crash interrupted instead of discarding.

        The stale log *is* the current generation's retained segment --
        shard repair may need it, so it is renamed into place rather
        than truncated (unless the segment somehow already exists).
        """
        if self._manifest is None:
            super()._discard_stale_wal()
            return
        gen = int(self._manifest["gen"])
        segment_path = self._segment_path(gen)
        if str(gen) in dict(self._manifest["segments"]) and \
                not os.path.isfile(segment_path):
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None
            self.io.replace(self.wal_path, segment_path)
            if self.fsync:
                self.io.fsync_dir(self.data_dir)
        else:
            super()._discard_stale_wal()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.pages.close()
        super().close()


def open_server_store(data_dir: str, backend: str = "file",
                      fsync: bool = True, io: IoShim | None = None,
                      lock: bool = False) -> ServerStore:
    """Open the durable store for ``data_dir`` with the chosen backend."""
    if backend == "file":
        return ServerStore(data_dir, fsync=fsync, io=io, lock=lock)
    if backend == "sqlite":
        return PagedServerStore(data_dir, fsync=fsync, io=io, lock=lock)
    raise ValueError(f"unknown storage backend {backend!r} "
                     "(expected 'file' or 'sqlite')")
