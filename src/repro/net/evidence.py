"""Forensic evidence bundles: provable records of server deviations.

When a verifying client raises :class:`~repro.net.client.IntegrityError`
the exception alone is ephemeral -- useful to the process that caught
it, worthless to anyone else.  Following the accountability line of
SUNDR and PeerReview, this module serialises everything a third party
needs to re-run the failed verification *offline*:

* the verbatim offending frames (the request as encoded, the response
  payload exactly as it came off the socket -- not a re-encoding);
* the client's register/counter state immediately before the operation;
* the trust-anchor lineage (initial tag and, when the client persists
  an anchor file, its raw contents);
* for Protocol I, the public-key directory the signature was checked
  against, so the forged-signature verdict is reproducible without the
  PKI.

A bundle is a single file: an ASCII magic line followed by one
wire-encoded dict (the codec already covers every type involved, and
"equal objects encode identically" makes bundles canonical).

:func:`reverify` replays the client-side checks against the recorded
pre-operation state and answers the only question that matters after
the fact: *is this bundle evidence of a genuine deviation, or would the
response have verified cleanly?*  Four bundle kinds exist:

``response``
    a per-operation verification failure (bad VO, counter regression,
    illegitimate signature, malformed extras);
``sync``
    a failed Protocol II synchronisation predicate over exchanged
    registers;
``count-sync``
    a failed Protocol I count-sync predicate over exchanged counts;
``replication``
    a cross-replica divergence proven by witness attestations
    (:mod:`repro.net.replication`), naming the deviating replica --
    the primary (fork/equivocation) or a fabricating witness.  Unlike
    ``response`` bundles, the signed attestation frames ARE the proof:
    a frame that fails to decode or a witness signature that does not
    verify makes the bundle prove *nothing* (``genuine=False``).
"""

from __future__ import annotations

import os

from repro.crypto import rsa
from repro.crypto.hashing import Digest, hash_state
from repro.crypto.signatures import Signature
from repro.mtree.forest import StoreSpec
from repro.mtree.proofs import ProofError
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import Response
from repro.protocols.protocol2 import INITIAL_OWNER
from repro.protocols.verify import derive_outcome
from repro.storage.atomic import atomic_write
from repro.wire import CODEC_VERSION, WireError, decode, encode

_BUNDLES = _registry.counter(
    "net.evidence_bundles", "forensic evidence bundles written to disk")

_MAGIC = b"cvs-evidence-bundle 1\n"


class EvidenceError(Exception):
    """The file is not a readable evidence bundle."""


# -- serialisation ---------------------------------------------------------

def write_bundle(path: str, bundle: dict) -> str:
    """Serialise a bundle atomically and durably; returns ``path``.

    Evidence is the artefact a dispute is settled with -- it gets the
    same tmp + fsync + rename + dir-fsync treatment as a snapshot, so a
    power cut right after "evidence written" cannot leave a half bundle
    (or no bundle) behind.
    """
    payload = encode(bundle)
    atomic_write(path, _MAGIC + payload)
    if _obs.enabled:
        _BUNDLES.inc(kind=bundle.get("kind", "?"))
    return path


def read_bundle(path: str) -> dict:
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(_MAGIC):
        raise EvidenceError(f"{path!r} is not an evidence bundle")
    try:
        bundle = decode(blob[len(_MAGIC):])
    except WireError as exc:
        raise EvidenceError(f"corrupt evidence bundle: {exc}") from exc
    if not isinstance(bundle, dict) or "kind" not in bundle:
        raise EvidenceError("evidence bundle payload is not a bundle dict")
    if bundle.get("codec") != CODEC_VERSION:
        raise EvidenceError(
            f"bundle written by codec {bundle.get('codec')!r}, "
            f"this decoder is {CODEC_VERSION}")
    return bundle


# -- bundle builders -------------------------------------------------------

def anchor_lineage(initial_tag: Digest | None,
                   anchor_path: str | None) -> dict:
    contents = None
    if anchor_path is not None and os.path.isfile(anchor_path):
        try:
            with open(anchor_path, "r", encoding="ascii") as handle:
                contents = handle.read()
        except (OSError, UnicodeDecodeError):
            contents = None
    return {
        "initial_tag": initial_tag,
        "anchor_path": anchor_path,
        "anchor_file": contents,
    }


def key_directory(verifier) -> dict:
    """Public keys as hex ints -- self-contained, codec-friendly."""
    return {
        signer_id: {"modulus": format(key.modulus, "x"),
                    "exponent": key.exponent}
        for signer_id, key in verifier.directory().items()
    }


def response_bundle(*, protocol: str, user_id: str, reason: str,
                    op_index: int, order: int | dict,
                    request_frame: bytes, response_frame: bytes,
                    client_state: dict, anchor: dict,
                    verifier_keys: dict | None = None) -> dict:
    return {
        "codec": CODEC_VERSION,
        "kind": "response",
        "protocol": protocol,
        "user": user_id,
        "reason": reason,
        "op_index": op_index,
        "order": order,
        "request_frame": request_frame,
        "response_frame": response_frame,
        "client_state": client_state,
        "anchor": anchor,
        "verifier_keys": verifier_keys or {},
    }


def sync_bundle(initial_root: Digest,
                registers: dict[str, dict]) -> dict:
    return {
        "codec": CODEC_VERSION,
        "kind": "sync",
        "protocol": "II",
        "user": "*",
        "reason": "synchronisation predicate failed over exchanged registers",
        "initial_root": initial_root,
        "registers": {user: dict(entry)
                      for user, entry in registers.items()},
    }


def count_sync_bundle(counts: dict[str, dict]) -> dict:
    return {
        "codec": CODEC_VERSION,
        "kind": "count-sync",
        "protocol": "I",
        "user": "*",
        "reason": "count-sync predicate failed over exchanged counts",
        "counts": {user: dict(entry) for user, entry in counts.items()},
    }


def replication_bundle(*, mode: str, deviant: str, user_id: str, ctr: int,
                       reason: str, attestations: list[bytes],
                       order: int | dict,
                       expected_root: Digest | None = None,
                       request_frame: bytes = b"",
                       response_frame: bytes = b"",
                       verifier_keys: dict | None = None) -> dict:
    """A cross-replica divergence, with the replica it implicates.

    ``mode`` is one of ``witness-fabrication`` (a valid witness
    signature over a deposit the primary never signed),
    ``primary-equivocation`` (two valid primary-signed deposits at one
    counter with different roots), or ``primary-fork`` (a valid
    primary-signed deposit contradicting the root this client derived
    from the operation's own VO, whose frames ride along).
    ``attestations`` are canonical wire encodings of the
    :class:`~repro.net.replication.RootAttestation` frames that prove
    the claim; ``verifier_keys`` carries the replica group's public
    keys so the verdict reproduces offline without the PKI.
    """
    return {
        "codec": CODEC_VERSION,
        "kind": "replication",
        "protocol": "repl",
        "user": user_id,
        "reason": reason,
        "mode": mode,
        "deviant": deviant,
        "ctr": ctr,
        "attestation_frames": list(attestations),
        "expected_root": expected_root,
        "request_frame": request_frame,
        "response_frame": response_frame,
        "order": order,
        "verifier_keys": verifier_keys or {},
    }


# -- offline re-verification ----------------------------------------------

def reverify(bundle: dict) -> tuple[bool, str]:
    """Re-run the recorded verification; ``(genuine, why)``.

    ``genuine=True`` means the bundle proves a deviation: the captured
    material fails verification against the recorded pre-operation
    state, exactly as it did live.  ``genuine=False`` means the
    material verifies cleanly -- the bundle does *not* implicate the
    server (e.g. someone fabricated or mixed up a bundle).
    """
    kind = bundle.get("kind")
    if kind == "sync":
        return _reverify_sync(bundle)
    if kind == "count-sync":
        return _reverify_count_sync(bundle)
    if kind == "response":
        return _reverify_response(bundle)
    if kind == "replication":
        return _reverify_replication(bundle)
    raise EvidenceError(f"unknown bundle kind {kind!r}")


def _reverify_sync(bundle: dict) -> tuple[bool, str]:
    from repro.net.client import sync_check

    if sync_check(bundle["initial_root"], bundle["registers"]):
        return False, "registers satisfy the sync predicate"
    return True, "no serial history explains the exchanged registers"


def _reverify_count_sync(bundle: dict) -> tuple[bool, str]:
    from repro.net.client import count_sync_check

    if count_sync_check(bundle["counts"]):
        return False, "counts satisfy the count-sync predicate"
    return True, "no user's gctr accounts for the total of local counters"


def _reverify_response(bundle: dict) -> tuple[bool, str]:
    try:
        request = decode(bundle["request_frame"])
        response = decode(bundle["response_frame"])
    except WireError as exc:
        return True, f"offending frame does not decode: {exc}"
    if not isinstance(response, Response):
        return True, "offending frame is not a protocol response"
    state = bundle["client_state"]
    try:
        ctr = int(response.extras["ctr"])
        last_user = response.extras["last_user"]
    except (KeyError, TypeError, ValueError):
        return True, "response lacks well-formed ctr/last_user extras"
    if ctr < int(state["gctr"]):
        return True, (f"operation counter regressed: {ctr} after "
                      f"recorded gctr {state['gctr']}")
    if bundle["protocol"] == "II" and ctr == 0 and last_user != INITIAL_OWNER:
        return True, "initial state attributed to a user"
    try:
        outcome = derive_outcome(request.query, response.result,
                                 StoreSpec.coerce(bundle["order"]))
    except ProofError as exc:
        return True, f"verification object rejected: {exc}"
    if bundle["protocol"] == "I":
        return _reverify_signature(bundle, response, outcome, ctr, last_user)
    return False, "response verifies cleanly against the recorded state"


def _reverify_signature(bundle, response, outcome, ctr,
                        last_user) -> tuple[bool, str]:
    signature = response.extras.get("sig")
    if not isinstance(signature, Signature):
        return True, "response carries no state signature"
    if signature.signer_id != last_user:
        return True, (f"signature claims {signature.signer_id!r} but the "
                      f"state is attributed to {last_user!r}")
    key_info = bundle.get("verifier_keys", {}).get(signature.signer_id)
    if key_info is None:
        return True, f"no public key for claimed signer {signature.signer_id!r}"
    key = rsa.PublicKey(modulus=int(key_info["modulus"], 16),
                        exponent=int(key_info["exponent"]))
    expected = hash_state(outcome.old_root, ctr)
    if signature.digest != expected:
        return True, "signature covers a different state digest"
    if not rsa.verify_digest(key, expected, signature.raw):
        return True, "signature bytes do not verify under the signer's key"
    return False, "state signature verifies cleanly"


def _bundle_key(bundle: dict, signer_id: str):
    info = bundle.get("verifier_keys", {}).get(signer_id)
    if info is None:
        return None
    return rsa.PublicKey(modulus=int(info["modulus"], 16),
                         exponent=int(info["exponent"]))


def _signature_holds(bundle: dict, signature, signer_id: str,
                     expected: Digest) -> bool:
    if not isinstance(signature, Signature) or signature.signer_id != signer_id:
        return False
    key = _bundle_key(bundle, signer_id)
    if key is None or signature.digest != expected:
        return False
    return rsa.verify_digest(key, expected, signature.raw)


def _reverify_replication(bundle: dict) -> tuple[bool, str]:
    """Re-judge a cross-replica divergence from its signed attestations.

    The polarity is inverted relative to ``response`` bundles: there, a
    frame that fails to decode is itself the deviation; here the
    attestation frames carry the *proof*, so anything unverifiable
    about them means the bundle implicates nobody.
    """
    from repro.net.replication import (
        RootAttestation,
        attestation_digest,
        deposit_digest,
    )

    mode = bundle.get("mode")
    deviant = bundle.get("deviant")
    ctr = bundle.get("ctr")
    attestations = []
    for frame in bundle.get("attestation_frames", ()):
        try:
            attestation = decode(frame)
        except WireError as exc:
            return False, f"attestation frame does not decode: {exc}"
        if not isinstance(attestation, RootAttestation):
            return False, "attestation frame is not a root attestation"
        expected = attestation_digest(attestation.witness_id,
                                      attestation.deposit)
        if not _signature_holds(bundle, attestation.signature,
                                attestation.witness_id, expected):
            return False, (f"witness signature by "
                           f"{attestation.witness_id!r} does not verify: "
                           "the attestation proves nothing")
        attestations.append(attestation)
    if not attestations:
        return False, "bundle carries no attestations"

    def primary_signed(deposit) -> bool:
        return _signature_holds(
            bundle, deposit.signature, deposit.primary_id,
            deposit_digest(deposit.primary_id, deposit.ctr, deposit.root))

    if mode == "witness-fabrication":
        attestation = attestations[0]
        if attestation.witness_id != deviant:
            return False, (f"bundle names {deviant!r} but the attestation "
                           f"was signed by {attestation.witness_id!r}")
        if primary_signed(attestation.deposit):
            return False, ("the attested deposit was validly signed by the "
                           "primary: the witness told the truth")
        return True, (f"witness {deviant!r} validly countersigned a deposit "
                      "the primary never signed")

    if mode == "primary-equivocation":
        valid = [a.deposit for a in attestations
                 if a.deposit.ctr == ctr and primary_signed(a.deposit)]
        if len(valid) < 2:
            return False, ("fewer than two validly primary-signed deposits "
                           f"at counter {ctr}")
        roots = {deposit.root for deposit in valid}
        if len(roots) < 2:
            return False, "the deposits agree on one root: no equivocation"
        if valid[0].primary_id != deviant:
            return False, (f"bundle names {deviant!r} but the deposits were "
                           f"signed by {valid[0].primary_id!r}")
        return True, (f"primary signed {len(roots)} different roots at "
                      f"counter {ctr}")

    if mode == "primary-fork":
        attestation = attestations[0]
        deposit = attestation.deposit
        if deposit.ctr != ctr or not primary_signed(deposit):
            return False, ("the attested deposit is not validly "
                           f"primary-signed at counter {ctr}")
        if deposit.primary_id != deviant:
            return False, (f"bundle names {deviant!r} but the deposit was "
                           f"signed by {deposit.primary_id!r}")
        expected_root = bundle.get("expected_root")
        if not isinstance(expected_root, Digest):
            return False, "bundle records no expected root to contradict"
        if bundle.get("request_frame") and bundle.get("response_frame"):
            # The strong form: re-derive the client's expected root from
            # the served operation's own VO, rather than trusting the
            # recorded digest.
            try:
                request = decode(bundle["request_frame"])
                response = decode(bundle["response_frame"])
                outcome = derive_outcome(request.query, response.result,
                                         StoreSpec.coerce(bundle["order"]))
            except (WireError, ProofError, AttributeError) as exc:
                return False, (f"recorded operation frames do not re-verify: "
                               f"{exc}")
            if outcome.new_root != expected_root:
                return False, ("recorded frames do not derive the claimed "
                               "expected root")
        if deposit.root == expected_root:
            return False, ("the deposited root matches the VO-derived root: "
                           "no fork")
        return True, ("primary signed a deposit contradicting the root it "
                      f"served this client at counter {ctr}")

    return False, f"unknown replication divergence mode {mode!r}"
