"""Message framing for socket transport: 4-byte length + wire bytes.

Both the blocking (:func:`send_message`/:func:`recv_message`) and the
asyncio (:func:`async_send_message`/:func:`async_recv_message`) halves
speak the identical frame format, so threaded clients talk to the
async server and vice versa.
"""

from __future__ import annotations

import asyncio
import socket
import struct

from repro.obs import runtime as _obs
from repro.obs.metrics import BYTE_BUCKETS, REGISTRY as _registry
from repro.wire import decode, encode

MAX_FRAME = 64 * 1024 * 1024  # sanity bound, far above any real VO

_FRAMES_SENT = _registry.counter("net.frames_sent", "frames written to sockets")
_FRAMES_RECEIVED = _registry.counter("net.frames_received", "frames read off sockets")
_BYTES_SENT = _registry.counter(
    "net.bytes_sent", "payload + header bytes written to sockets")
_BYTES_RECEIVED = _registry.counter(
    "net.bytes_received", "payload + header bytes read off sockets")
_FRAME_BYTES = _registry.histogram(
    "net.frame_bytes", "per-frame payload size on the wire", buckets=BYTE_BUCKETS)


class FramingError(Exception):
    """Raised on oversized or truncated frames."""


def send_message(sock: socket.socket, message: object) -> None:
    """Encode and send one message."""
    payload = encode(message)
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds the maximum")
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    if _obs.enabled:
        _FRAMES_SENT.inc()
        _BYTES_SENT.inc(4 + len(payload))
        _FRAME_BYTES.observe(len(payload), direction="out")


def recv_message(sock: socket.socket,
                 capture: list | None = None) -> object | None:
    """Receive one message; None on clean EOF at a frame boundary.

    A peer dying mid-frame -- inside the 4-byte length prefix or inside
    the payload -- raises :class:`FramingError`, never a bare
    ``struct.error`` or a short-read artefact; callers get exactly one
    failure type for "the stream is no longer frame-aligned".

    ``capture``, when given, receives the verbatim payload bytes of the
    decoded frame (appended before decoding) -- forensic evidence
    capture needs the bytes exactly as the peer sent them, not a
    re-encoding of the decoded object.
    """
    header = _recv_exact(sock, 4, allow_eof=True)
    if header is None:
        return None
    try:
        (length,) = struct.unpack(">I", header)
    except struct.error as exc:  # defensive: _recv_exact guarantees 4 bytes
        raise FramingError(f"unreadable frame header: {exc}") from exc
    if length > MAX_FRAME:
        raise FramingError(f"peer announced a {length}-byte frame")
    payload = _recv_exact(sock, length, allow_eof=False, what="payload")
    if capture is not None:
        capture.append(payload)
    if _obs.enabled:
        _FRAMES_RECEIVED.inc()
        _BYTES_RECEIVED.inc(4 + length)
        _FRAME_BYTES.observe(length, direction="in")
    return decode(payload)


async def async_send_message(writer: asyncio.StreamWriter,
                             message: object) -> None:
    """Encode and send one message on a stream writer (does not drain;
    the caller decides when to apply backpressure)."""
    payload = encode(message)
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds the maximum")
    writer.write(struct.pack(">I", len(payload)) + payload)
    if _obs.enabled:
        _FRAMES_SENT.inc()
        _BYTES_SENT.inc(4 + len(payload))
        _FRAME_BYTES.observe(len(payload), direction="out")


async def async_recv_message(reader: asyncio.StreamReader,
                             capture: list | None = None) -> object | None:
    """Receive one message; None on clean EOF at a frame boundary.

    The async twin of :func:`recv_message`, with identical failure
    semantics: EOF inside a frame raises :class:`FramingError`.
    """
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF at a frame boundary
        raise FramingError(
            f"connection closed mid-length prefix: "
            f"{len(exc.partial)} of 4 bytes") from exc
    try:
        (length,) = struct.unpack(">I", header)
    except struct.error as exc:  # defensive: readexactly guarantees 4 bytes
        raise FramingError(f"unreadable frame header: {exc}") from exc
    if length > MAX_FRAME:
        raise FramingError(f"peer announced a {length}-byte frame")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FramingError(
            f"connection closed mid-payload: "
            f"{len(exc.partial)} of {length} bytes") from exc
    if capture is not None:
        capture.append(payload)
    if _obs.enabled:
        _FRAMES_RECEIVED.inc()
        _BYTES_RECEIVED.inc(4 + length)
        _FRAME_BYTES.observe(length, direction="in")
    return decode(payload)


def _recv_exact(sock: socket.socket, n: int, allow_eof: bool,
                what: str = "length prefix") -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise FramingError(
                f"connection closed mid-{what}: {n - remaining} of {n} bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
