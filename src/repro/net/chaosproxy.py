"""A fault-injecting TCP proxy for chaos-testing the net stack.

Sits between clients and a :class:`~repro.net.server.TrustedCvsTcpServer`
and misbehaves on purpose, at the *byte* level, where real networks
fail: it severs connections without warning, forwards only a prefix of
a chunk before killing the link (a frame truncated mid-length-prefix or
mid-payload, depending on where the cut lands), and injects forwarding
delays.  It never alters bytes it does deliver -- corruption is the
wire/verification layers' department; the proxy models *loss*, which
the paper's model explicitly assumes away (future-work item (3)).

Reproducibility: every probabilistic decision is drawn from RNGs
derived from one master seed and the per-connection index, so a chaos
campaign with a fixed seed injects the same fault schedule per
connection on every run regardless of thread interleaving.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

_DROPS = _registry.counter(
    "chaos.conn_drops", "connections severed by the chaos proxy")
_TRUNCATIONS = _registry.counter(
    "chaos.truncations", "chunks cut mid-stream before severing")
_RESETS = _registry.counter(
    "chaos.resets", "connections aborted with an RST mid-stream")
_DELAYS = _registry.counter(
    "chaos.delays", "forwarding delays injected")
_CONNECTIONS = _registry.counter(
    "chaos.connections", "connections accepted by the chaos proxy")


@dataclass(frozen=True)
class ChaosConfig:
    """Per-chunk fault probabilities and magnitudes.

    Each forwarded chunk independently risks: ``truncate_rate`` (cut
    the chunk at a random byte offset, forward the prefix, then sever
    both directions), ``drop_rate`` (sever immediately, forwarding
    nothing), ``reset_rate`` (forward a random prefix, then *abort* the
    connection -- an RST, not a graceful FIN, so the peer sees
    ``ECONNRESET`` mid-response instead of a clean EOF), and
    ``delay_rate`` (sleep ``delay_s`` before forwarding).
    ``reset_rate_s2c``, when set, overrides ``reset_rate`` for the
    server-to-client direction only (each direction draws from its own
    seeded RNG, so the override keeps schedules reproducible).
    ``immune_chunks`` exempts each connection's first N chunks so a
    campaign can guarantee forward progress.
    """

    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    reset_rate: float = 0.0
    reset_rate_s2c: float | None = None
    delay_rate: float = 0.0
    delay_s: float = 0.01
    immune_chunks: int = 0

    def reset_rate_for(self, label: str) -> float:
        if label == "s2c" and self.reset_rate_s2c is not None:
            return self.reset_rate_s2c
        return self.reset_rate


class _Pump(threading.Thread):
    """One direction of one proxied connection."""

    def __init__(self, proxy: "ChaosProxy", source: socket.socket,
                 sink: socket.socket, rng: random.Random, label: str) -> None:
        super().__init__(daemon=True)
        self._proxy = proxy
        self._source = source
        self._sink = sink
        self._rng = rng
        self._label = label

    def run(self) -> None:
        config = self._proxy.config
        reset_rate = config.reset_rate_for(self._label)
        chunk_no = 0
        try:
            while True:
                chunk = self._source.recv(4096)
                if not chunk:
                    break
                chunk_no += 1
                if chunk_no > config.immune_chunks:
                    roll = self._rng.random()
                    sever = config.drop_rate
                    if roll < sever:
                        self._proxy._record("drops")
                        return  # sever without forwarding
                    sever += config.truncate_rate
                    if roll < sever:
                        cut = self._rng.randrange(0, len(chunk))
                        if cut:
                            self._sink.sendall(chunk[:cut])
                        self._proxy._record("truncations")
                        return  # sever mid-frame
                    sever += reset_rate
                    if roll < sever:
                        cut = self._rng.randrange(0, len(chunk))
                        if cut:
                            self._sink.sendall(chunk[:cut])
                        self._proxy._record("resets")
                        self._abort()
                        return  # RST, not FIN: abrupt mid-response abort
                    if roll < sever + config.delay_rate:
                        self._proxy._record("delays", sever=False)
                        self._proxy._sleep(config.delay_s)
                self._sink.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (self._source, self._sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _abort(self) -> None:
        """Close both sockets abruptly: SO_LINGER with a zero timeout
        turns close() into an RST, so the peer's next read fails with
        ``ECONNRESET`` instead of seeing a graceful end of stream."""
        hard_close = struct.pack("ii", 1, 0)
        for sock in (self._source, self._sink):
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, hard_close)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A TCP proxy that forwards ``listen`` -> ``upstream`` with faults.

    Use as a context manager or call :meth:`start` / :meth:`stop`.  The
    fault tallies are exposed on :attr:`faults` (and mirrored to obs
    counters when collection is enabled).
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 listen_host: str = "127.0.0.1", listen_port: int = 0,
                 seed: int = 0, config: ChaosConfig | None = None) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.config = config or ChaosConfig()
        self._seed = seed
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host, listen_port))
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._conn_index = 0
        self._lock = threading.Lock()
        self.faults = {"drops": 0, "truncations": 0, "resets": 0,
                       "delays": 0, "connections": 0}

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return host, port

    def start(self) -> "ChaosProxy":
        self._listener.listen(32)
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                index = self._conn_index
                self._conn_index += 1
                self.faults["connections"] += 1
            if _obs.enabled:
                _CONNECTIONS.inc()
            try:
                upstream = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                # Upstream down (e.g. mid-restart): the client sees a
                # refused/reset connection, which is exactly the fault
                # model it must absorb.
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            # Independent, deterministic RNG per connection direction.
            # (Integer seeds only: str/tuple hashing is randomised per
            # process, which would break cross-run reproducibility.)
            base = self._seed * 1_000_003 + index * 2
            _Pump(self, downstream, upstream,
                  random.Random(base), "c2s").start()
            _Pump(self, upstream, downstream,
                  random.Random(base + 1), "s2c").start()

    def _record(self, kind: str, sever: bool = True) -> None:
        with self._lock:
            self.faults[kind] += 1
        if _obs.enabled:
            {"drops": _DROPS, "truncations": _TRUNCATIONS,
             "resets": _RESETS, "delays": _DELAYS}[kind].inc()

    @staticmethod
    def _sleep(seconds: float) -> None:
        if seconds > 0:
            import time

            time.sleep(seconds)
