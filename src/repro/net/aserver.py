"""The asyncio Trusted-CVS server: one event loop, thousands of
connections, batched execution.

The threaded deployment (:mod:`repro.net.server`) spends a thread and a
lock handoff per connection and pays one Merkle root recompute -- and,
for Protocol I, one signature round trip -- per operation.  This server
multiplexes every connection on a single event loop and runs **one
drainer task** that owns the :class:`~repro.net.core.ServerCore`
outright (single-writer: no lock exists at all).  Per loop iteration
the drainer pulls everything the reader tasks have queued and applies
it in arrival order as *batches*:

* every fresh request of a batch is appended to the WAL and made
  durable with a **single fsync** (group commit) before any of them
  executes;
* the Merkle root is recomputed **once per batch** -- one dirty-path
  pass over all touched leaves (:meth:`MerkleBPlusTree.refresh_root`),
  so sibling operations share the hashing of their common path
  prefixes;
* for Protocol I, a run of pipelined requests from one user becomes a
  *signing run*: all but the last are stamped with the defer-followup
  marker, so the server blocks -- and the client signs -- **once per
  batch** instead of once per operation.

Detection guarantees are unchanged: every operation still gets its own
verification object, counter, and last-user attribution, and the
per-op VO chain (old root -> new root) stays contiguous, so k-bounded
deviation detection and the Lemma 4.1 register algebra apply exactly
as before.  Dedup, WAL replay, Byzantine attack hooks, and snapshot
policy are the shared core's -- byte-identical to the threaded server.

Blocking semantics (Protocol I): a request that finds its branch
awaiting another client's follow-up signature is parked, not refused;
the drainer retries parked requests the moment a follow-up lands and
refuses them with a retryable :class:`ErrorReply` when
``block_timeout`` expires -- the same contract the threaded handler
implements with its condition variable.

Run it with :func:`serve_async_in_thread`: the loop lives in a daemon
thread and the returned handle exposes the same management surface as
the threaded server (``address``, ``stop``, ``quiesce``,
``read_quiesced``, ``consistent_view``, ``initial_root_digest``), each
bridged onto the loop with ``run_coroutine_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro.mtree.database import VerifiedDatabase
from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.protocols.base import (
    ErrorReply,
    Followup,
    Request,
    ServerProtocol,
    ServerState,
)
from repro.protocols.protocol1 import DEFER_FOLLOWUP_KEY
from repro.net.core import DEDUP_WINDOW, SNAPSHOT_EVERY, ServerCore
from repro.net.framing import (
    FramingError,
    async_recv_message,
    async_send_message,
)
from repro.wire import WireError

#: how long a parked request waits for another client's follow-up
#: signature before being refused (Protocol I only)
BLOCK_TIMEOUT_SECONDS = 30.0

#: default per-batch execution cap: the drainer never applies more
#: than this many requests under one group commit / root pass.
BATCH_MAX = 64

#: how long the drainer waits for a connection's send buffer to drain
#: before declaring the client gone and aborting the transport.
DRAIN_TIMEOUT_SECONDS = 10.0

_REQUEST_MS = _registry.histogram(
    "net.request_ms", "server-side request handling time (incl. blocking)")
_FOLLOWUPS = _registry.counter(
    "net.followups", "follow-up signatures absorbed (Protocol I)")
_BLOCK_WAITS = _registry.counter(
    "net.block_waits", "requests that found the server blocked (Protocol I)")
_BLOCK_TIMEOUTS = _registry.counter(
    "net.block_timeouts", "requests refused because the block never cleared")
_INFLIGHT = _registry.gauge(
    "net.inflight", "requests accepted but not yet answered (async server)")


@dataclass
class _Work:
    """One queued wire message, waiting for the drainer."""

    user: str
    message: object  # Request | Followup
    writer: asyncio.StreamWriter
    enqueued_ns: int
    deadline: float = 0.0  # set when the item is parked (blocked)
    parked: bool = False


@dataclass
class _Shutdown:
    """Queue sentinel: wakes the drainer so it can observe stop()."""

    done: asyncio.Event = field(default_factory=asyncio.Event)


class AsyncTrustedCvsServer:
    """Event-loop Trusted-CVS server over the shared :class:`ServerCore`.

    Construct it, then run :meth:`start` on an event loop -- or use
    :func:`serve_async_in_thread`, which owns a loop in a daemon thread
    and bridges the management surface for synchronous callers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        order: int = 8,
        database: VerifiedDatabase | None = None,
        protocol: ServerProtocol | None = None,
        state: ServerState | None = None,
        block_timeout: float = BLOCK_TIMEOUT_SECONDS,
        data_dir: str | None = None,
        snapshot_every: int = SNAPSHOT_EVERY,
        fsync: bool = True,
        attack=None,
        dedup_window: int = DEDUP_WINDOW,
        batch_max: int = BATCH_MAX,
        drain_timeout: float = DRAIN_TIMEOUT_SECONDS,
        shards: int = 1,
        replicator=None,
        backend: str = "file",
        io=None,
        lock: bool = False,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        self._host, self._port = host, port
        self.block_timeout = block_timeout
        self.batch_max = batch_max
        self.drain_timeout = drain_timeout
        self.core = ServerCore(order=order, database=database,
                               protocol=protocol, state=state,
                               data_dir=data_dir,
                               snapshot_every=snapshot_every, fsync=fsync,
                               attack=attack, dedup_window=dedup_window,
                               shards=shards, replicator=replicator,
                               backend=backend, io=io, lock=lock)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._parked: list[_Work] = []
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._server: asyncio.base_events.Server | None = None
        self._drainer: asyncio.Task | None = None
        self._state_changed: asyncio.Condition = asyncio.Condition()
        self._stopping = False
        self.loop: asyncio.AbstractEventLoop | None = None

    # -- introspection -----------------------------------------------------

    @property
    def protocol(self) -> ServerProtocol:
        return self.core.protocol

    @property
    def states(self) -> dict[str, ServerState]:
        return self.core.states

    @property
    def attack(self):
        return self.core.attack

    @property
    def replayed_records(self) -> int:
        return self.core.replayed_records

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, start accepting, and launch the drainer task."""
        self.loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self._drainer = asyncio.ensure_future(self._drain())

    async def shutdown(self, snapshot: bool = False) -> None:
        """Stop serving.  With ``snapshot=False`` this is the crash-
        equivalent shutdown: transports are aborted (a SIGKILLed process
        takes its sockets down with it) and nothing is flushed beyond
        what the WAL already holds."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
        if self._drainer is not None:
            # Wake the drainer with a sentinel so it exits between
            # batches -- never mid-apply (apply_batch has no awaits, so
            # cancellation could not split it anyway, but the sentinel
            # also lets the drainer park cleanly).
            sentinel = _Shutdown()
            self._queue.put_nowait(sentinel)
            await sentinel.done.wait()
            self._drainer.cancel()
            try:
                await self._drainer
            except asyncio.CancelledError:
                pass
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._server is not None:
            await self._server.wait_closed()
        if self.core.store is not None and snapshot:
            self.core.snapshot()
        self.core.close_store()

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while not self._stopping:
                try:
                    message = await async_recv_message(reader)
                except (FramingError, WireError, OSError):
                    return
                if message is None:
                    return  # clean EOF
                if not isinstance(message, (Request, Followup)):
                    return  # protocol violation: drop the connection
                if isinstance(message, Request):
                    # The defer-followup marker is server-internal; a
                    # client that sets it would skip its signing duty.
                    message.extras.pop(DEFER_FOLLOWUP_KEY, None)
                user_id = message.extras.get("user", "anonymous")
                self._inflight += 1
                if _obs.enabled:
                    _INFLIGHT.set(self._inflight)
                await self._queue.put(_Work(
                    user=user_id, message=message, writer=writer,
                    enqueued_ns=time.perf_counter_ns()))
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # -- the drainer -------------------------------------------------------

    async def _drain(self) -> None:
        """The single-writer task: the only code that touches the core."""
        while True:
            item = await self._next_item()
            items: list = []
            if item is not None:
                items.append(item)
                while not self._queue.empty():
                    items.append(self._queue.get_nowait())
            await self._process(items)
            await self._expire_parked()
            async with self._state_changed:
                self._state_changed.notify_all()
            for sentinel in [i for i in items if isinstance(i, _Shutdown)]:
                sentinel.done.set()
                return

    async def _next_item(self):
        """Next queued message, or ``None`` when a parked request's
        deadline expires first."""
        if not self._parked:
            return await self._queue.get()
        delay = max(0.0, min(w.deadline for w in self._parked)
                    - time.monotonic())
        try:
            return await asyncio.wait_for(self._queue.get(), timeout=delay)
        except asyncio.TimeoutError:
            return None

    async def _process(self, items: list) -> None:
        core = self.core
        blocking = getattr(core.protocol, "blocks_after_request", False)
        supports_defer = getattr(core.protocol,
                                 "supports_deferred_followup", False)
        # Parked requests go first (they arrived before anything queued
        # now), then this iteration's arrivals, in order.
        candidates = [w for w in self._parked]
        self._parked = []
        candidates.extend(i for i in items if not isinstance(i, _Shutdown))
        pending = list(reversed(candidates))  # pop() from the arrival end
        batch: list[_Work] = []

        async def flush() -> None:
            if not batch:
                return
            entries = [(w.user, w.message) for w in batch]
            try:
                responses = core.apply_batch(entries)
            except Exception:
                # A request the protocol cannot execute (the threaded
                # handler's equivalent is the handler thread dying and
                # dropping that one connection).  Abort the batch's
                # connections; the drainer must survive.
                for work in batch:
                    self._inflight -= 1
                    transport = work.writer.transport
                    if transport is not None:
                        transport.abort()
                if _obs.enabled:
                    _INFLIGHT.set(self._inflight)
                batch.clear()
                return
            await self._send_responses(batch, responses)
            batch.clear()

        while pending:
            work = pending.pop()
            if isinstance(work.message, Followup):
                # Order matters: everything that arrived before this
                # follow-up executes before it is absorbed.
                await flush()
                try:
                    core.apply_followup(work.user, work.message)
                except Exception:
                    transport = work.writer.transport
                    if transport is not None:
                        transport.abort()
                self._inflight -= 1
                if _obs.enabled:
                    _FOLLOWUPS.inc(user=work.user)
                    _INFLIGHT.set(self._inflight)
                # The follow-up may have unblocked a branch: give every
                # parked request another chance, ahead of newer work.
                if self._parked:
                    for parked in reversed(self._parked):
                        pending.append(parked)
                    self._parked = []
                continue
            if blocking:
                if batch:
                    if (supports_defer and work.user == batch[0].user
                            and len(batch) < self.batch_max):
                        batch.append(work)
                    else:
                        self._park(work)
                    continue
                if core.blocked_for(work.user):
                    self._park(work)
                    continue
                batch.append(work)
            else:
                batch.append(work)
                if len(batch) >= self.batch_max:
                    await flush()
        await flush()

    def _park(self, work: _Work) -> None:
        """Hold a request until its branch unblocks (Protocol I)."""
        if not work.parked:
            work.parked = True
            work.deadline = time.monotonic() + self.block_timeout
            if _obs.enabled:
                _BLOCK_WAITS.inc()
        self._parked.append(work)

    async def _expire_parked(self) -> None:
        """Refuse parked requests whose block never cleared -- the same
        retryable error frame the threaded handler sends on timeout."""
        if not self._parked:
            return
        now = time.monotonic()
        keep, expired = [], []
        for work in self._parked:
            (expired if work.deadline <= now else keep).append(work)
        self._parked = keep
        for work in expired:
            self._inflight -= 1
            if _obs.enabled:
                _BLOCK_TIMEOUTS.inc()
                _INFLIGHT.set(self._inflight)
            if work.writer.is_closing():
                continue
            try:
                await async_send_message(work.writer, ErrorReply(
                    reason="server blocked awaiting a follow-up signature",
                    extras={"timeout_s": self.block_timeout,
                            "retryable": True}))
            except (OSError, FramingError):
                continue
        if expired:
            await self._drain_writers({w.writer for w in expired})

    async def _send_responses(self, batch: list[_Work], responses: list) -> None:
        writers: set[asyncio.StreamWriter] = set()
        for work, response in zip(batch, responses):
            self._inflight -= 1
            if _obs.enabled:
                _REQUEST_MS.observe(
                    (time.perf_counter_ns() - work.enqueued_ns) / 1e6,
                    user=work.user)
                _INFLIGHT.set(self._inflight)
            if work.writer.is_closing():
                continue  # client gone; the op stands, dedup covers retries
            try:
                await async_send_message(work.writer, response)
            except (OSError, FramingError):
                continue
            writers.add(work.writer)
        await self._drain_writers(writers)

    async def _drain_writers(self, writers: set) -> None:
        """Apply backpressure per batch: one gathered drain, with a
        timeout so one dead client cannot stall everyone's responses."""
        drains = [self._drain_one(writer) for writer in writers
                  if not writer.is_closing()]
        if drains:
            await asyncio.gather(*drains)

    async def _drain_one(self, writer: asyncio.StreamWriter) -> None:
        try:
            await asyncio.wait_for(writer.drain(), timeout=self.drain_timeout)
        except (asyncio.TimeoutError, OSError, ConnectionError):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- quiescence (on-loop coroutines) ------------------------------------

    async def quiesce_async(self, timeout: float | None = None) -> bool:
        """Wait until no follow-up is outstanding on any branch."""
        if timeout is None:
            timeout = self.block_timeout
        return await self._await_unblocked(timeout)

    async def read_quiesced_async(self, reader, timeout: float | None = None):
        """Run ``reader(main_state)`` at a quiescent instant.

        Atomic with respect to the drainer: between the predicate
        turning true and ``reader`` returning there is no ``await``, and
        the drainer only runs at loop yield points.
        """
        if timeout is None:
            timeout = self.block_timeout
        if not await self._await_unblocked(timeout):
            return None
        return reader(self.core.states["main"])

    async def _await_unblocked(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        async with self._state_changed:
            while not (self.core.all_unblocked() and self._queue.empty()
                       and not self._parked):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                try:
                    await asyncio.wait_for(self._state_changed.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    return False
            return True


class AsyncServerHandle:
    """Synchronous facade over a server whose loop runs in a thread.

    Mirrors the management surface of the threaded
    :class:`~repro.net.server.TrustedCvsTcpServer`, so harnesses (chaos
    campaigns, benchmarks, tests) can drive either deployment through
    one code path.
    """

    def __init__(self, server: AsyncTrustedCvsServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def core(self) -> ServerCore:
        return self._server.core

    @property
    def protocol(self) -> ServerProtocol:
        return self._server.protocol

    @property
    def attack(self):
        return self._server.attack

    @property
    def replayed_records(self) -> int:
        return self._server.replayed_records

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    @property
    def block_timeout(self) -> float:
        return self._server.block_timeout

    def _call(self, coroutine, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def initial_root_digest(self):
        """The *current* root digest, read atomically on the loop."""
        async def _read():
            return self._server.core.state.database.root_digest()
        return self._call(_read())

    def quiesce(self, timeout: float | None = None) -> bool:
        if timeout is None:
            timeout = self._server.block_timeout
        return self._call(self._server.quiesce_async(timeout),
                          timeout=timeout + 5.0)

    def read_quiesced(self, reader, timeout: float | None = None):
        if timeout is None:
            timeout = self._server.block_timeout
        return self._call(self._server.read_quiesced_async(reader, timeout),
                          timeout=timeout + 5.0)

    def consistent_view(self, timeout: float | None = None):
        return self.read_quiesced(
            lambda state: (state.database.root_digest(), state.ctr,
                           self._server.core.round),
            timeout=timeout)

    def read_state(self, reader):
        """Run ``reader(main_state)`` on the loop (no quiescence wait)."""
        async def _read():
            return reader(self._server.core.states["main"])
        return self._call(_read())

    def checkpoint(self) -> None:
        async def _snap():
            self._server.core.snapshot()
        self._call(_snap())

    def stop(self, snapshot: bool = False) -> None:
        """Stop serving; ``snapshot=False`` is crash-equivalent."""
        try:
            self._call(self._server.shutdown(snapshot=snapshot), timeout=30.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._loop.is_running():
                self._loop.close()

    def graceful_stop(self, timeout: float | None = None) -> bool:
        """The operator shutdown, mirroring the threaded server's:
        quiesce (drains queued batches and parked requests), flush the
        replicator, fsync the WAL and write a final snapshot on the
        loop, then stop.  Returns False when a wait timed out (shutdown
        still proceeds)."""
        if timeout is None:
            timeout = self._server.block_timeout
        clean = self.quiesce(timeout=timeout)
        replicator = self._server.core.replicator
        if replicator is not None:
            # Flushed from this thread: sender threads are independent
            # of the event loop, and the quiesce above already drained
            # every operation that could still create a deposit.
            clean = replicator.flush(timeout=timeout) and clean

        async def _finalise():
            core = self._server.core
            if core.store is not None:
                core.store.wal_sync()
                core.snapshot()
        self._call(_finalise(), timeout=timeout + 5.0)
        self.stop(snapshot=False)
        return clean


def serve_async_in_thread(
    order: int = 8,
    database: VerifiedDatabase | None = None,
    port: int = 0,
    protocol: ServerProtocol | None = None,
    state: ServerState | None = None,
    block_timeout: float = BLOCK_TIMEOUT_SECONDS,
    data_dir: str | None = None,
    snapshot_every: int = SNAPSHOT_EVERY,
    fsync: bool = True,
    attack=None,
    batch_max: int = BATCH_MAX,
    dedup_window: int = DEDUP_WINDOW,
    shards: int = 1,
    replicator=None,
    backend: str = "file",
    io=None,
    lock: bool = False,
) -> AsyncServerHandle:
    """Start an async server on its own event-loop thread.

    Returns a handle with the threaded server's management surface;
    call ``handle.stop()`` when done.
    """
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_forever()

    thread = threading.Thread(target=_run, daemon=True,
                              name="trusted-cvs-aserver")
    thread.start()

    async def _build() -> AsyncTrustedCvsServer:
        server = AsyncTrustedCvsServer(
            order=order, database=database, port=port, protocol=protocol,
            state=state, block_timeout=block_timeout, data_dir=data_dir,
            snapshot_every=snapshot_every, fsync=fsync, attack=attack,
            batch_max=batch_max, dedup_window=dedup_window, shards=shards,
            replicator=replicator, backend=backend, io=io, lock=lock)
        await server.start()
        return server

    future = asyncio.run_coroutine_threadsafe(_build(), loop)
    try:
        server = future.result(timeout=30.0)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise
    return AsyncServerHandle(server, loop, thread)
