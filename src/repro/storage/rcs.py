"""An RCS-style versioned file store: reverse-delta revision chains.

CVS keeps, per file, the newest revision in full plus a chain of
*reverse* deltas -- applying delta ``i`` to revision ``i+1`` yields
revision ``i``.  Checking out the head is O(1); checking out an old
revision applies the chain backwards.  This mirrors ``,v`` files
closely enough to exercise the same commit/checkout code paths the
paper models, while staying a deterministic in-memory structure we can
serialise into the Merkle tree.

Documents are lists of newline-free strings (lines).  The store also
supports a *dead* state (``cvs remove``), recorded as a revision whose
content is empty and whose ``dead`` flag is set.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass

from repro.storage.diff import Delta, Hunk, PatchError, apply_delta, diff


class RcsError(Exception):
    """Raised on malformed revision numbers or serialised stores."""


@dataclass(frozen=True)
class Revision:
    """Metadata for one committed revision of a file."""

    number: str  # "1.1", "1.2", ...
    author: str
    log_message: str
    timestamp: int  # simulation round (logical time)
    dead: bool = False


class _Branch:
    """A side branch: forward deltas rooted at a trunk revision.

    CVS numbers branches off revision ``1.N`` as ``1.N.2``, ``1.N.4``,
    ... with branch revisions ``1.N.2.1``, ``1.N.2.2``, ...  Unlike the
    trunk (reverse deltas from the head), branches store *forward*
    deltas from the branch point -- mirroring real ``,v`` files.
    """

    __slots__ = ("base_number", "revisions", "forward_deltas")

    def __init__(self, base_number: str) -> None:
        self.base_number = base_number
        self.revisions: list[Revision] = []
        self.forward_deltas: list[Delta] = []


class RevisionStore:
    """All revisions of a single file, newest trunk revision in full."""

    def __init__(self) -> None:
        self._revisions: list[Revision] = []
        self._head_lines: list[str] = []
        # _reverse_deltas[i] transforms revision i+2's content into
        # revision i+1's content (1-based revision indices).
        self._reverse_deltas: list[Delta] = []
        self._branches: dict[str, _Branch] = {}

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._revisions)

    @property
    def head_number(self) -> str | None:
        """Revision number of the newest revision, or None if empty."""
        if not self._revisions:
            return None
        return self._revisions[-1].number

    @property
    def is_dead(self) -> bool:
        """Whether the newest revision marks the file as removed."""
        return bool(self._revisions) and self._revisions[-1].dead

    def log(self) -> list[Revision]:
        """All revisions, oldest first."""
        return list(self._revisions)

    def revision(self, number: str) -> Revision:
        index = self._index_of(number)
        return self._revisions[index]

    def checkout(self, number: str | None = None) -> list[str]:
        """Content of a revision (default: trunk head).

        Accepts trunk numbers (``1.4``) and branch numbers
        (``1.4.2.3``): branch checkout walks back to the branch point,
        then forward along the branch's delta chain.
        """
        if not self._revisions:
            raise RcsError("empty revision store")
        if number is None:
            return list(self._head_lines)
        if number.count(".") >= 3:
            return self._checkout_branch_revision(number)
        index = self._index_of(number)
        lines = list(self._head_lines)
        # Walk the reverse-delta chain from the head down to ``index``.
        try:
            for delta_index in range(len(self._reverse_deltas) - 1, index - 1, -1):
                lines = apply_delta(lines, self._reverse_deltas[delta_index])
        except PatchError as exc:
            # A structurally parsable but content-corrupted store: the
            # delta chain no longer applies to the stored head.
            raise RcsError(f"corrupt delta chain: {exc}") from exc
        return lines

    def _checkout_branch_revision(self, number: str) -> list[str]:
        branch_id, _, step_text = number.rpartition(".")
        branch = self._branches.get(branch_id)
        if branch is None:
            raise RcsError(f"unknown branch {branch_id!r}")
        try:
            step = int(step_text)
        except ValueError as exc:
            raise RcsError(f"malformed revision number {number!r}") from exc
        if not 1 <= step <= len(branch.revisions):
            raise RcsError(f"unknown revision {number!r}")
        lines = self.checkout(branch.base_number)
        try:
            for delta in branch.forward_deltas[:step]:
                lines = apply_delta(lines, delta)
        except PatchError as exc:
            raise RcsError(f"corrupt branch delta chain: {exc}") from exc
        return lines

    def diff_between(self, old_number: str, new_number: str) -> Delta:
        """The forward delta from one revision to another."""
        return diff(self.checkout(old_number), self.checkout(new_number))

    def _index_of(self, number: str) -> int:
        for index, revision in enumerate(self._revisions):
            if revision.number == number:
                return index
        raise RcsError(f"unknown revision {number!r}")

    # -- mutation -----------------------------------------------------------

    def commit(self, lines: list[str], author: str, log_message: str, timestamp: int) -> Revision:
        """Commit new head content; returns the new revision."""
        _check_lines(lines)
        return self._append(lines, author, log_message, timestamp, dead=False)

    def remove(self, author: str, log_message: str, timestamp: int) -> Revision:
        """Commit a *dead* revision (``cvs remove``)."""
        if self.is_dead:
            raise RcsError("file is already dead")
        return self._append([], author, log_message, timestamp, dead=True)

    def resurrect(self, lines: list[str], author: str, log_message: str, timestamp: int) -> Revision:
        """Re-add a removed file with fresh content."""
        if not self.is_dead:
            raise RcsError("file is not dead")
        return self._append(lines, author, log_message, timestamp, dead=False)

    # -- branches -------------------------------------------------------------

    def create_branch(self, at_revision: str) -> str:
        """Open a new branch rooted at a trunk revision; returns its id
        (CVS style: even branch numbers, ``1.N.2``, ``1.N.4``, ...)."""
        self._index_of(at_revision)  # validates the trunk revision
        existing = sum(1 for b in self._branches.values() if b.base_number == at_revision)
        branch_id = f"{at_revision}.{2 * (existing + 1)}"
        self._branches[branch_id] = _Branch(base_number=at_revision)
        return branch_id

    def branches(self) -> list[str]:
        """All branch ids, sorted."""
        return sorted(self._branches)

    def branch_base(self, branch_id: str) -> str:
        """The trunk revision a branch was rooted at."""
        return self._require_branch(branch_id).base_number

    def branch_head(self, branch_id: str) -> str | None:
        """Newest revision number on a branch, or None if empty."""
        branch = self._require_branch(branch_id)
        if not branch.revisions:
            return None
        return branch.revisions[-1].number

    def branch_log(self, branch_id: str) -> list[Revision]:
        return list(self._require_branch(branch_id).revisions)

    def commit_on_branch(self, branch_id: str, lines: list[str], author: str,
                         log_message: str, timestamp: int) -> Revision:
        """Commit new content onto a branch (forward delta)."""
        _check_lines(lines)
        branch = self._require_branch(branch_id)
        if branch.revisions and timestamp < branch.revisions[-1].timestamp:
            raise RcsError("timestamps must be non-decreasing")
        previous = self.checkout(branch.revisions[-1].number) if branch.revisions \
            else self.checkout(branch.base_number)
        branch.forward_deltas.append(diff(previous, lines))
        number = f"{branch_id}.{len(branch.revisions) + 1}"
        revision = Revision(number=number, author=author, log_message=log_message,
                            timestamp=timestamp, dead=False)
        branch.revisions.append(revision)
        return revision

    def _require_branch(self, branch_id: str) -> _Branch:
        branch = self._branches.get(branch_id)
        if branch is None:
            raise RcsError(f"unknown branch {branch_id!r}")
        return branch

    def _append(self, lines: list[str], author: str, log_message: str, timestamp: int, dead: bool) -> Revision:
        if self._revisions and timestamp < self._revisions[-1].timestamp:
            raise RcsError("timestamps must be non-decreasing")
        number = f"1.{len(self._revisions) + 1}"
        if self._revisions:
            # Reverse delta: from the new head back to the old head.
            self._reverse_deltas.append(diff(lines, self._head_lines))
        self._head_lines = list(lines)
        revision = Revision(number=number, author=author, log_message=log_message,
                            timestamp=timestamp, dead=dead)
        self._revisions.append(revision)
        return revision

    # -- serialisation --------------------------------------------------------

    def serialize(self) -> bytes:
        """Deterministic byte encoding, suitable as a Merkle-tree value.

        Two stores with identical history serialise identically, so the
        root digest commits to the full revision history of every file.
        """
        out: list[str] = ["rcs-store 2", f"revisions {len(self._revisions)}"]
        for revision in self._revisions:
            out.append(_revision_line(revision))
        out.append(f"head {len(self._head_lines)}")
        out.extend(self._head_lines)
        out.append(f"deltas {len(self._reverse_deltas)}")
        for delta in self._reverse_deltas:
            _write_delta(out, delta)
        out.append(f"branches {len(self._branches)}")
        for branch_id in sorted(self._branches):
            branch = self._branches[branch_id]
            out.append(f"branch {branch_id} {branch.base_number} {len(branch.revisions)}")
            for revision in branch.revisions:
                out.append(_revision_line(revision))
            for delta in branch.forward_deltas:
                _write_delta(out, delta)
        return ("\n".join(out) + "\n").encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes) -> "RevisionStore":
        """Parse a store produced by :meth:`serialize`."""
        lines = blob.decode("utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        reader = _Reader(lines)
        magic = reader.next()
        if magic not in ("rcs-store 1", "rcs-store 2"):
            raise RcsError("bad magic line")
        store = cls()
        revision_count = reader.expect_int("revisions")
        for _ in range(revision_count):
            store._revisions.append(_parse_revision_line(reader.next()))
        head_count = reader.expect_int("head")
        store._head_lines = [reader.next() for _ in range(head_count)]
        delta_count = reader.expect_int("deltas")
        for _ in range(delta_count):
            store._reverse_deltas.append(_read_delta(reader))
        if magic == "rcs-store 2":
            branch_count = reader.expect_int("branches")
            for _ in range(branch_count):
                parts = reader.next().split(" ")
                if len(parts) != 4 or parts[0] != "branch":
                    raise RcsError("malformed branch header")
                branch = _Branch(base_number=parts[2])
                branch_revisions = int(parts[3])
                for _ in range(branch_revisions):
                    branch.revisions.append(_parse_revision_line(reader.next()))
                for _ in range(branch_revisions):
                    branch.forward_deltas.append(_read_delta(reader))
                store._branches[parts[1]] = branch
        if reader.remaining():
            raise RcsError("trailing data in serialised store")
        if len(store._reverse_deltas) != max(0, len(store._revisions) - 1):
            raise RcsError("delta chain length disagrees with revision count")
        return store


class _Reader:
    """Sequential line reader with header parsing helpers."""

    def __init__(self, lines: list[str]) -> None:
        self._lines = lines
        self._position = 0

    def next(self) -> str:
        if self._position >= len(self._lines):
            raise RcsError("unexpected end of serialised store")
        line = self._lines[self._position]
        self._position += 1
        return line

    def expect_int(self, keyword: str) -> int:
        line = self.next()
        prefix = keyword + " "
        if not line.startswith(prefix):
            raise RcsError(f"expected {keyword!r} header, got {line!r}")
        try:
            return int(line[len(prefix):])
        except ValueError as exc:
            raise RcsError(f"bad {keyword!r} count") from exc

    def remaining(self) -> bool:
        return self._position < len(self._lines)


def _revision_line(revision: Revision) -> str:
    return "rev {number} {author} {timestamp} {dead} {log}".format(
        number=revision.number,
        author=_b64(revision.author),
        timestamp=revision.timestamp,
        dead=int(revision.dead),
        log=_b64(revision.log_message),
    )


def _parse_revision_line(line: str) -> Revision:
    parts = line.split(" ")
    if len(parts) != 6 or parts[0] != "rev":
        raise RcsError("malformed revision line")
    return Revision(
        number=parts[1],
        author=_unb64(parts[2]),
        timestamp=int(parts[3]),
        dead=bool(int(parts[4])),
        log_message=_unb64(parts[5]),
    )


def _write_delta(out: list[str], delta: Delta) -> None:
    out.append(f"delta {len(delta)}")
    for hunk in delta:
        out.append(f"hunk {hunk.start} {len(hunk.deleted)} {len(hunk.inserted)}")
        out.extend(hunk.deleted)
        out.extend(hunk.inserted)


def _read_delta(reader: "_Reader") -> Delta:
    hunk_count = reader.expect_int("delta")
    hunks = []
    for _ in range(hunk_count):
        parts = reader.next().split(" ")
        if len(parts) != 4 or parts[0] != "hunk":
            raise RcsError("malformed hunk line")
        start, n_deleted, n_inserted = int(parts[1]), int(parts[2]), int(parts[3])
        deleted = tuple(reader.next() for _ in range(n_deleted))
        inserted = tuple(reader.next() for _ in range(n_inserted))
        hunks.append(Hunk(start=start, deleted=deleted, inserted=inserted))
    return tuple(hunks)


def _check_lines(lines: list[str]) -> None:
    for line in lines:
        if "\n" in line:
            raise ValueError("document lines must not contain newlines")


def _b64(text: str) -> str:
    return base64.urlsafe_b64encode(text.encode("utf-8")).decode("ascii")


def _unb64(text: str) -> str:
    # validate=True: reject non-alphabet characters instead of silently
    # discarding them (the default would turn garbage into "").
    try:
        return base64.b64decode(
            text.replace("-", "+").replace("_", "/").encode("ascii"), validate=True
        ).decode("utf-8")
    except Exception as exc:  # noqa: BLE001 - normalise to RcsError
        raise RcsError("bad base64 field") from exc
