"""Pluggable page stores: the disk layer under the Merkle forest.

A :class:`PageStore` holds two things, committed together:

* **pages** -- opaque blobs keyed ``(kind, shard, generation, seq)``.
  The snapshot engine (:mod:`repro.storage.engine`) serialises each
  shard tree into a ``"nodes"`` page stream (structure + separator
  keys) and an ``"entries"`` page stream (leaf key/value lines), so a
  million-entry shard is written and read back page by page instead of
  as one monolithic blob.
* **meta** -- small key->bytes records (the checkpoint manifest: per
  shard generation + root, the WAL chain heads, protocol state).

Every page carries a domain-separated SHA-256 checksum over its full
key *and* payload, verified on read: a flipped bit (or a page served
under the wrong key) raises :class:`CorruptPageError`, which the
recovery path turns into shard quarantine + WAL repair rather than a
silent wrong root.

Two implementations:

* :class:`MemoryPageStore` -- dict-backed, transactional, for tests and
  as the reference semantics.
* :class:`SqlitePageStore` -- the real disk backend (stdlib
  ``sqlite3``), one transaction per checkpoint, ``synchronous=FULL``
  when fsync is on.  Fault injection happens at this API boundary (the
  shim cannot interpose sqlite's own syscalls): commit gates, lying
  commits, and read-side bit-rot all route through the
  :class:`~repro.storage.faults.IoShim` hooks.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry
from repro.storage.faults import REAL_IO, IoShim

_PAGES_WRITTEN = _registry.counter(
    "storage.pages_written", "checkpoint pages written to the page store")
_PAGES_READ = _registry.counter(
    "storage.pages_read", "checkpoint pages read back (checksum verified)")
_PAGE_BYTES = _registry.counter(
    "storage.page_bytes_written", "page payload bytes written")
_CHECKSUM_FAILURES = _registry.counter(
    "storage.checksum_failures", "pages rejected by checksum verification")

_CHECKSUM_DOMAIN = b"\x0astorage-page"


class StorageError(Exception):
    """The page store could not complete an operation."""


class CorruptPageError(StorageError):
    """A page failed checksum verification (bit-rot or tamper)."""

    def __init__(self, kind: str, shard: int, gen: int, seq: int) -> None:
        super().__init__(
            f"page ({kind!r}, shard={shard}, gen={gen}, seq={seq}) "
            "failed checksum verification")
        self.kind = kind
        self.shard = shard
        self.gen = gen
        self.seq = seq


def page_checksum(kind: str, shard: int, gen: int, seq: int,
                  blob: bytes) -> bytes:
    """Domain-separated checksum binding the payload to its full key."""
    hasher = hashlib.sha256()
    hasher.update(_CHECKSUM_DOMAIN)
    hasher.update(f"{kind}|{shard}|{gen}|{seq}|{len(blob)}|".encode("ascii"))
    hasher.update(blob)
    return hasher.digest()


class PageStore:
    """Abstract page + meta store with transactional commit.

    Usage protocol: ``begin()``, any number of ``write_page`` /
    ``put_meta`` / ``drop_generation`` calls, then ``commit()`` (all
    become visible and durable together) or ``rollback()``.  Reads see
    only committed state.
    """

    def begin(self) -> None:
        raise NotImplementedError

    def commit(self) -> None:
        raise NotImplementedError

    def rollback(self) -> None:
        raise NotImplementedError

    def write_page(self, kind: str, shard: int, gen: int, seq: int,
                   blob: bytes) -> None:
        raise NotImplementedError

    def read_pages(self, kind: str, shard: int, gen: int):
        """Yield committed page blobs in ``seq`` order, checksum-verified."""
        raise NotImplementedError

    def page_count(self, kind: str, shard: int, gen: int) -> int:
        raise NotImplementedError

    def generations(self, shard: int) -> list[int]:
        """Committed generations holding at least one page for ``shard``."""
        raise NotImplementedError

    def drop_generation(self, shard: int, gen: int) -> None:
        raise NotImplementedError

    def put_meta(self, key: str, value: bytes) -> None:
        raise NotImplementedError

    def get_meta(self, key: str) -> bytes | None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class MemoryPageStore(PageStore):
    """Dict-backed reference implementation (transactional, volatile)."""

    def __init__(self, io: IoShim | None = None) -> None:
        self.io = io or REAL_IO
        self._pages: dict[tuple[str, int, int, int], tuple[bytes, bytes]] = {}
        self._meta: dict[str, bytes] = {}
        self._staged: list | None = None

    def begin(self) -> None:
        if self._staged is not None:
            raise StorageError("transaction already open")
        self._staged = []

    def _stage(self, op) -> None:
        if self._staged is None:
            raise StorageError("no open transaction")
        self._staged.append(op)

    def commit(self) -> None:
        if self._staged is None:
            raise StorageError("no open transaction")
        self.io.crash_point("pagestore:pre-commit")
        for op in self._staged:
            op()
        self._staged = None
        self.io.crash_point("pagestore:post-commit")

    def rollback(self) -> None:
        self._staged = None

    def write_page(self, kind: str, shard: int, gen: int, seq: int,
                   blob: bytes) -> None:
        self.io.crash_point("pagestore:page-write")
        checksum = page_checksum(kind, shard, gen, seq, blob)
        self._stage(lambda: self._pages.__setitem__(
            (kind, shard, gen, seq), (blob, checksum)))
        if _obs.enabled:
            _PAGES_WRITTEN.inc()
            _PAGE_BYTES.inc(len(blob))

    def read_pages(self, kind: str, shard: int, gen: int):
        keys = sorted(k for k in self._pages
                      if k[:3] == (kind, shard, gen))
        for key in keys:
            blob, checksum = self._pages[key]
            blob = self.io.corrupt_page(kind, shard, gen, key[3], blob)
            if page_checksum(kind, shard, gen, key[3], blob) != checksum:
                if _obs.enabled:
                    _CHECKSUM_FAILURES.inc()
                raise CorruptPageError(kind, shard, gen, key[3])
            if _obs.enabled:
                _PAGES_READ.inc()
            yield blob

    def page_count(self, kind: str, shard: int, gen: int) -> int:
        return sum(1 for k in self._pages if k[:3] == (kind, shard, gen))

    def generations(self, shard: int) -> list[int]:
        return sorted({k[2] for k in self._pages if k[1] == shard})

    def drop_generation(self, shard: int, gen: int) -> None:
        doomed = [k for k in self._pages if k[1] == shard and k[2] == gen]
        self._stage(lambda: [self._pages.pop(k, None) for k in doomed])

    def put_meta(self, key: str, value: bytes) -> None:
        self._stage(lambda: self._meta.__setitem__(key, value))

    def get_meta(self, key: str) -> bytes | None:
        return self._meta.get(key)

    def close(self) -> None:
        self._staged = None


class SqlitePageStore(PageStore):
    """SQLite-backed page store: the ``--backend sqlite`` disk engine.

    One file (``pages.db``) holds both tables; a checkpoint is a single
    ``BEGIN IMMEDIATE ... COMMIT`` transaction, so a crash at any point
    before the commit leaves the previous checkpoint fully intact --
    sqlite's rollback journal provides the page-level atomicity, our
    per-page checksums provide tamper/rot *detection* on top of it.
    """

    FILE = "pages.db"

    def __init__(self, path: str, fsync: bool = True,
                 io: IoShim | None = None, readonly: bool = False) -> None:
        self.path = path
        self.io = io or REAL_IO
        self._in_txn = False
        try:
            if readonly:
                uri = f"file:{path}?mode=ro"
                self._conn = sqlite3.connect(uri, uri=True)
            else:
                self._conn = sqlite3.connect(path, isolation_level=None)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open page store {path!r}: {exc}") from exc
        try:
            if not readonly:
                # FULL + rollback journal: a committed checkpoint
                # survives power loss; OFF is the tests' speed mode.
                self._conn.execute(
                    f"PRAGMA synchronous={'FULL' if fsync else 'OFF'}")
                self._conn.execute("""
                    CREATE TABLE IF NOT EXISTS meta (
                        key TEXT PRIMARY KEY,
                        value BLOB NOT NULL)""")
                self._conn.execute("""
                    CREATE TABLE IF NOT EXISTS pages (
                        kind TEXT NOT NULL,
                        shard INTEGER NOT NULL,
                        gen INTEGER NOT NULL,
                        seq INTEGER NOT NULL,
                        blob BLOB NOT NULL,
                        checksum BLOB NOT NULL,
                        PRIMARY KEY (kind, shard, gen, seq))""")
        except sqlite3.Error as exc:
            raise StorageError(f"cannot initialise page store: {exc}") from exc

    def begin(self) -> None:
        if self._in_txn:
            raise StorageError("transaction already open")
        try:
            self._conn.execute("BEGIN IMMEDIATE")
        except sqlite3.Error as exc:
            raise StorageError(f"cannot begin transaction: {exc}") from exc
        self._in_txn = True

    def commit(self) -> None:
        if not self._in_txn:
            raise StorageError("no open transaction")
        self.io.pre_commit(self.path)
        try:
            self.io.commit_gate(self.path)
            self.io.crash_point("pagestore:pre-commit")
            self._conn.execute("COMMIT")
        except (OSError, sqlite3.Error) as exc:
            self._rollback_quietly()
            raise StorageError(f"checkpoint commit failed: {exc}") from exc
        finally:
            self._in_txn = False
        self.io.crash_point("pagestore:post-commit")

    def _rollback_quietly(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    def rollback(self) -> None:
        if self._in_txn:
            self._rollback_quietly()
            self._in_txn = False

    def write_page(self, kind: str, shard: int, gen: int, seq: int,
                   blob: bytes) -> None:
        if not self._in_txn:
            raise StorageError("write_page outside a transaction")
        self.io.crash_point("pagestore:page-write")
        try:
            self.io.commit_gate(self.path)  # ENOSPC surfaces at write time
        except OSError as exc:
            raise StorageError(f"page write failed: {exc}") from exc
        checksum = page_checksum(kind, shard, gen, seq, blob)
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO pages VALUES (?,?,?,?,?,?)",
                (kind, shard, gen, seq, blob, checksum))
        except sqlite3.Error as exc:
            raise StorageError(f"page write failed: {exc}") from exc
        if _obs.enabled:
            _PAGES_WRITTEN.inc()
            _PAGE_BYTES.inc(len(blob))

    def read_pages(self, kind: str, shard: int, gen: int):
        cursor = self._conn.execute(
            "SELECT seq, blob, checksum FROM pages "
            "WHERE kind=? AND shard=? AND gen=? ORDER BY seq",
            (kind, shard, gen))
        for seq, blob, checksum in cursor:
            blob = self.io.corrupt_page(kind, shard, gen, seq, bytes(blob))
            if page_checksum(kind, shard, gen, seq, blob) != bytes(checksum):
                if _obs.enabled:
                    _CHECKSUM_FAILURES.inc()
                raise CorruptPageError(kind, shard, gen, seq)
            if _obs.enabled:
                _PAGES_READ.inc()
            yield blob

    def page_count(self, kind: str, shard: int, gen: int) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM pages WHERE kind=? AND shard=? AND gen=?",
            (kind, shard, gen)).fetchone()
        return int(row[0])

    def page_bytes(self, kind: str, shard: int, gen: int) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(LENGTH(blob)), 0) FROM pages "
            "WHERE kind=? AND shard=? AND gen=?",
            (kind, shard, gen)).fetchone()
        return int(row[0])

    def generations(self, shard: int) -> list[int]:
        rows = self._conn.execute(
            "SELECT DISTINCT gen FROM pages WHERE shard=? ORDER BY gen",
            (shard,)).fetchall()
        return [int(r[0]) for r in rows]

    def drop_generation(self, shard: int, gen: int) -> None:
        if not self._in_txn:
            raise StorageError("drop_generation outside a transaction")
        self._conn.execute(
            "DELETE FROM pages WHERE shard=? AND gen=?", (shard, gen))

    def put_meta(self, key: str, value: bytes) -> None:
        if not self._in_txn:
            raise StorageError("put_meta outside a transaction")
        self._conn.execute(
            "INSERT OR REPLACE INTO meta VALUES (?,?)", (key, value))

    def get_meta(self, key: str) -> bytes | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key=?", (key,)).fetchone()
        return None if row is None else bytes(row[0])

    def close(self) -> None:
        self.rollback()
        self._conn.close()


def open_page_store(data_dir: str, fsync: bool = True,
                    io: IoShim | None = None,
                    readonly: bool = False) -> SqlitePageStore:
    """Open (creating if needed) the sqlite page store in ``data_dir``."""
    if not readonly:
        os.makedirs(data_dir, exist_ok=True)
    return SqlitePageStore(
        os.path.join(data_dir, SqlitePageStore.FILE),
        fsync=fsync, io=io, readonly=readonly)
