"""Three-way merge (diff3) -- the `cvs update` half of CVS.

CVS is a *concurrent* versions system: two users may modify the same
file from a common base revision, and the second committer must first
merge the other's changes into their working copy.  This module
implements the classic diff3 algorithm over our Myers diff engine:

* :func:`merge3` -- merge ``ours`` and ``theirs`` against ``base``;
  non-conflicting edits combine silently, overlapping edits produce a
  :class:`Conflict` region carrying both sides.
* :func:`render_with_markers` -- the familiar ``<<<<<<<``/``=======``/
  ``>>>>>>>`` textual rendering.

The algorithm aligns both edit scripts in base coordinates, walks the
union of their changed regions, and classifies each region: taken from
one side if only that side touched it (or both made the identical
change), conflicting otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.diff import diff


@dataclass(frozen=True)
class Conflict:
    """An overlapping edit: both sides changed the same base region."""

    base: tuple[str, ...]
    ours: tuple[str, ...]
    theirs: tuple[str, ...]


@dataclass(frozen=True)
class MergeResult:
    """Outcome of a three-way merge.

    ``segments`` interleaves plain line-lists (clean text) and
    :class:`Conflict` objects, in document order.
    """

    segments: tuple[object, ...]

    @property
    def has_conflicts(self) -> bool:
        return any(isinstance(segment, Conflict) for segment in self.segments)

    def conflicts(self) -> list[Conflict]:
        return [segment for segment in self.segments if isinstance(segment, Conflict)]

    def lines(self) -> list[str]:
        """The merged document; raises if conflicts remain."""
        if self.has_conflicts:
            raise ValueError("cannot flatten a merge with unresolved conflicts")
        out: list[str] = []
        for segment in self.segments:
            out.extend(segment)
        return out


def _regions(base: list[str], derived: list[str]) -> list[tuple[int, int, tuple[str, ...]]]:
    """Changed regions of ``derived`` vs ``base``, in base coordinates:
    (base_start, base_end, replacement_lines)."""
    return [
        (hunk.start, hunk.start + len(hunk.deleted), hunk.inserted)
        for hunk in diff(base, derived)
    ]


def merge3(base: list[str], ours: list[str], theirs: list[str]) -> MergeResult:
    """Merge two descendants of ``base``.

    The classic region walk: collect both sides' changed base regions,
    coalesce overlapping ones into chunks, and emit each chunk from
    whichever side changed it (conflict if both did, differently).
    """
    ours_regions = _regions(base, ours)
    theirs_regions = _regions(base, theirs)

    segments: list[object] = []
    text: list[str] = []
    cursor = 0  # position in base
    i = j = 0

    def flush_text() -> None:
        nonlocal text
        if text:
            segments.append(tuple(text))
            text = []

    while i < len(ours_regions) or j < len(theirs_regions):
        ours_next = ours_regions[i] if i < len(ours_regions) else None
        theirs_next = theirs_regions[j] if j < len(theirs_regions) else None

        # Next chunk starts at the earliest changed region.
        if theirs_next is None or (ours_next is not None and ours_next[0] <= theirs_next[0]):
            chunk_start, chunk_end = ours_next[0], ours_next[1]
        else:
            chunk_start, chunk_end = theirs_next[0], theirs_next[1]

        # Grow the chunk until no region from either side overlaps it.
        ours_in: list[tuple[int, int, tuple[str, ...]]] = []
        theirs_in: list[tuple[int, int, tuple[str, ...]]] = []
        grew = True
        while grew:
            grew = False
            while i < len(ours_regions) and _overlaps(ours_regions[i], chunk_start, chunk_end):
                region = ours_regions[i]
                ours_in.append(region)
                chunk_start = min(chunk_start, region[0])
                chunk_end = max(chunk_end, region[1])
                i += 1
                grew = True
            while j < len(theirs_regions) and _overlaps(theirs_regions[j], chunk_start, chunk_end):
                region = theirs_regions[j]
                theirs_in.append(region)
                chunk_start = min(chunk_start, region[0])
                chunk_end = max(chunk_end, region[1])
                j += 1
                grew = True

        text.extend(base[cursor:chunk_start])
        chunk_base = base[chunk_start:chunk_end]
        ours_version = _apply_regions(base, chunk_start, chunk_end, ours_in)
        theirs_version = _apply_regions(base, chunk_start, chunk_end, theirs_in)

        if not theirs_in or ours_version == theirs_version:
            text.extend(ours_version)
        elif not ours_in:
            text.extend(theirs_version)
        else:
            flush_text()
            segments.append(Conflict(
                base=tuple(chunk_base),
                ours=tuple(ours_version),
                theirs=tuple(theirs_version),
            ))
        cursor = chunk_end

    text.extend(base[cursor:])
    flush_text()
    return MergeResult(segments=tuple(segments))


def _overlaps(region: tuple[int, int, tuple[str, ...]], start: int, end: int) -> bool:
    """Whether a changed region collides with the chunk [start, end).

    A pure insertion (empty base span) at the *boundary* of a non-empty
    chunk is composable -- it deterministically lands before (at
    ``start``) or after (at ``end``) the chunk's replacement text -- so
    only interior insertions collide.  Two insertions at the very same
    point (an empty chunk) are genuinely ambiguous and must conflict.
    """
    r_start, r_end, _ = region
    if r_start == r_end:  # insertion point
        if start == end:  # chunk is itself a pure insertion point
            return r_start == start
        return start < r_start < end
    return r_start < end and start < r_end


def _apply_regions(base, chunk_start, chunk_end, regions) -> list[str]:
    """This side's version of the chunk: base text with its regions applied."""
    out: list[str] = []
    position = chunk_start
    for r_start, r_end, inserted in sorted(regions):
        out.extend(base[position:r_start])
        out.extend(inserted)
        position = r_end
    out.extend(base[position:chunk_end])
    return out


def render_with_markers(
    result: MergeResult,
    ours_label: str = "ours",
    theirs_label: str = "theirs",
) -> list[str]:
    """The conflict-marker rendering CVS writes into the working copy."""
    out: list[str] = []
    for segment in result.segments:
        if isinstance(segment, Conflict):
            out.append(f"<<<<<<< {ours_label}")
            out.extend(segment.ours)
            out.append("=======")
            out.extend(segment.theirs)
            out.append(f">>>>>>> {theirs_label}")
        else:
            out.extend(segment)
    return out
