"""The paged snapshot engine: shard trees <-> page streams.

Sits between the Merkle layer and a :class:`~repro.storage.pagestore.PageStore`.
Each shard tree is serialised with
:func:`~repro.mtree.persistence.iter_tree_stream` into two page
streams -- ``"nodes"`` (structure) and ``"entries"`` (leaf key/value
lines) -- chunked at :data:`PAGE_BYTES`.  Loading feeds the committed
pages back through :func:`~repro.mtree.persistence.load_tree_stream`
one page at a time, so restart memory is bounded by the tree being
rebuilt plus two pages, never the whole serialised snapshot
(:class:`LoadStats.max_resident_page_bytes` proves it).

The engine also owns the two *recovery* moves the checkpoint protocol
leans on:

* :func:`load_shard_tree` verifies page checksums while streaming and
  then recomputes the shard's Merkle root from scratch, comparing it to
  the root the checkpoint manifest recorded -- the full verification
  chain is page checksum -> recomputed structural root -> recorded root
  -> WAL-chain-anchored top root;
* :func:`replay_data_ops` re-applies the WAL segment's data operations
  to a quarantined shard's previous generation, which is exactly the
  delta that produced the damaged generation (a shard rewritten at
  checkpoint G was clean since its previous rewrite, so all its
  operations live in segment G alone).
"""

from __future__ import annotations

from repro.crypto.hashing import Digest
from repro.mtree.bplus import BPlusTree
from repro.mtree.database import DeleteQuery, WriteQuery
from repro.mtree.forest import shard_for_key
from repro.mtree.merkle import MerkleBPlusTree
from repro.mtree.persistence import (
    PersistenceError,
    iter_tree_stream,
    load_tree_stream,
)
from repro.protocols.base import Request
from repro.storage.pagestore import PageStore, StorageError

#: target payload size of one page; a page holds whole lines, so real
#: pages straddle this by at most one line.
PAGE_BYTES = 32 * 1024

KIND_NODES = "nodes"
KIND_ENTRIES = "entries"


class LoadStats:
    """Streaming-load accounting: proves bounded page residency."""

    def __init__(self) -> None:
        self.pages = 0
        self.bytes = 0
        self.resident_page_bytes = 0
        self.max_resident_page_bytes = 0

    def acquire(self, size: int) -> None:
        self.pages += 1
        self.bytes += size
        self.resident_page_bytes += size
        if self.resident_page_bytes > self.max_resident_page_bytes:
            self.max_resident_page_bytes = self.resident_page_bytes

    def release(self, size: int) -> None:
        self.resident_page_bytes -= size


def write_shard_pages(store: PageStore, shard: int, gen: int,
                      tree: BPlusTree,
                      page_bytes: int = PAGE_BYTES) -> dict[str, int]:
    """Serialise one shard tree into the store under ``gen``.

    Must be called inside an open store transaction.  Returns page and
    byte counts per stream (recorded in the checkpoint manifest so
    loads can sanity-check completeness before parsing).
    """
    buffers = {KIND_NODES: [], KIND_ENTRIES: []}
    sizes = {KIND_NODES: 0, KIND_ENTRIES: 0}
    seqs = {KIND_NODES: 0, KIND_ENTRIES: 0}
    counts = {"nodes_pages": 0, "entries_pages": 0,
              "nodes_bytes": 0, "entries_bytes": 0}

    def flush(kind: str) -> None:
        if not buffers[kind]:
            return
        blob = ("\n".join(buffers[kind]) + "\n").encode("ascii")
        store.write_page(kind, shard, gen, seqs[kind], blob)
        seqs[kind] += 1
        counts[f"{kind}_pages"] += 1
        counts[f"{kind}_bytes"] += len(blob)
        buffers[kind].clear()
        sizes[kind] = 0

    for kind, line in iter_tree_stream(tree):
        buffers[kind].append(line)
        sizes[kind] += len(line) + 1
        if sizes[kind] >= page_bytes:
            flush(kind)
    flush(KIND_NODES)
    flush(KIND_ENTRIES)
    return counts


def _page_lines(store: PageStore, kind: str, shard: int, gen: int,
                stats: LoadStats):
    """Yield lines from a committed page stream, one page resident at a
    time; checksum verification happens inside ``read_pages``."""
    for blob in store.read_pages(kind, shard, gen):
        stats.acquire(len(blob))
        try:
            text = blob.decode("ascii")
        except UnicodeDecodeError as exc:
            stats.release(len(blob))
            raise PersistenceError(f"page is not ascii: {exc}") from exc
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        yield from lines
        stats.release(len(blob))


def load_shard_tree(store: PageStore, shard: int, gen: int,
                    expected_root: Digest | None = None,
                    stats: LoadStats | None = None) -> MerkleBPlusTree:
    """Stream one shard's pages back into a Merkle tree and verify it.

    Raises :class:`~repro.storage.pagestore.CorruptPageError` on page
    rot, :class:`~repro.mtree.persistence.PersistenceError` on a
    malformed stream, and :class:`~repro.storage.pagestore.StorageError`
    when the recomputed root disagrees with ``expected_root`` -- all
    three send the caller down the quarantine + repair path.
    """
    stats = stats if stats is not None else LoadStats()
    tree = load_tree_stream(
        _page_lines(store, KIND_NODES, shard, gen, stats),
        _page_lines(store, KIND_ENTRIES, shard, gen, stats))
    mtree = MerkleBPlusTree(order=tree.order)
    mtree._tree = tree
    if expected_root is not None:
        # Recompute every digest from the loaded entries: binds the
        # page bytes to the root the WAL chain anchors, so tampered
        # pages with refreshed checksums are still caught here.
        actual, _nodes = mtree.refresh_root()
        if actual != expected_root:
            raise StorageError(
                f"shard {shard} gen {gen} hashes to {actual.short()}..., "
                f"manifest records {expected_root.short()}...")
    return mtree


def replay_data_ops(mtree: MerkleBPlusTree, messages, shard: int,
                    shards: int) -> int:
    """Re-apply a WAL segment's data operations routed to ``shard``.

    Mirrors :meth:`VerifiedDatabase.execute` semantics exactly: writes
    insert-or-overwrite verbatim, deletes of absent keys are no-ops
    (the live execution raised before mutating).  Non-data messages
    (follow-ups, protocol-internal requests, reads) never touch the
    tree.  Returns the number of operations applied.
    """
    applied = 0
    for message in messages:
        if not isinstance(message, Request):
            continue
        query = message.query
        if isinstance(query, WriteQuery):
            if shard_for_key(query.key, shards) == shard:
                mtree.insert(query.key, query.value)
                applied += 1
        elif isinstance(query, DeleteQuery):
            if shard_for_key(query.key, shards) == shard:
                if mtree.delete(query.key):
                    applied += 1
    return applied
