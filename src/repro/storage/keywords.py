"""RCS keyword expansion: ``$Id$``, ``$Revision$``, ``$Author$``, ...

CVS expands keyword markers in checked-out text so files self-describe
their provenance.  We implement the common subset on top of revision
metadata:

* ``$Id$``       -> ``$Id: path rev timestamp author $``
* ``$Revision$`` -> ``$Revision: rev $``
* ``$Author$``   -> ``$Author: author $``
* ``$Date$``     -> ``$Date: timestamp $``
* ``$Source$``   -> ``$Source: path $``

Expansion is idempotent: an already expanded keyword (``$Id: ... $``)
is collapsed back to its bare form before re-expansion, so round-trips
through commit/checkout never stack values.
"""

from __future__ import annotations

import re

from repro.storage.rcs import Revision

KEYWORDS = ("Id", "Revision", "Author", "Date", "Source")

# `$Keyword$` or `$Keyword: anything $` (no newlines, non-greedy).
_PATTERN = re.compile(
    r"\$(?P<name>" + "|".join(KEYWORDS) + r")(?::[^$\n]*)?\$"
)


def _expansion(name: str, path: str, revision: Revision) -> str:
    if name == "Id":
        body = f"{path} {revision.number} t{revision.timestamp} {revision.author}"
    elif name == "Revision":
        body = revision.number
    elif name == "Author":
        body = revision.author
    elif name == "Date":
        body = f"t{revision.timestamp}"
    elif name == "Source":
        body = path
    else:  # pragma: no cover - the regex constrains names
        raise ValueError(f"unknown keyword {name!r}")
    return f"${name}: {body} $"


def expand_keywords(lines: list[str], path: str, revision: Revision) -> list[str]:
    """Expand (or re-expand) all keyword markers in a document."""

    def replace(match: re.Match) -> str:
        return _expansion(match.group("name"), path, revision)

    return [_PATTERN.sub(replace, line) for line in lines]


def collapse_keywords(lines: list[str]) -> list[str]:
    """Collapse expanded keywords back to bare ``$Keyword$`` form.

    Run before diffing/committing so keyword churn never pollutes
    deltas or spuriously conflicts in merges.
    """

    def replace(match: re.Match) -> str:
        return f"${match.group('name')}$"

    return [_PATTERN.sub(replace, line) for line in lines]


def contains_keywords(lines: list[str]) -> bool:
    return any(_PATTERN.search(line) for line in lines)
