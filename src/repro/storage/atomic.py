"""Durable file primitives shared by every persistence path.

``tmp + os.replace`` alone is *not* crash-durable: POSIX only promises
the rename is atomic, not that it survives power loss -- until the
containing directory's entry is fsynced, a crash can resurrect the old
file (or leave neither name).  Every snapshot, evidence bundle, and
trust-anchor write in the tree therefore goes through
:func:`atomic_write`, which does the full dance::

    write tmp -> fsync(tmp) -> rename over target -> fsync(directory)

All steps route through an :class:`~repro.storage.faults.IoShim`, so
the fault-injection harness can crash the sequence at any point and the
recovery tests can prove each prefix of it is safe.

:class:`DirLock` is the companion guard: an ``flock``-held lock file
that keeps two server processes from opening the same data directory
(and hence the same WAL) concurrently.
"""

from __future__ import annotations

import os

from repro.obs import runtime as _obs
from repro.obs.metrics import REGISTRY as _registry

_ATOMIC_WRITES = _registry.counter(
    "storage.atomic_writes", "tmp+rename+dir-fsync file replacements")

try:  # pragma: no cover - fcntl is always present on the platforms we run
    import fcntl
except ImportError:  # pragma: no cover - windows fallback: lock is advisory
    fcntl = None


class LockError(Exception):
    """The data directory is already locked by another process."""


def fsync_dir(path: str) -> None:
    """fsync a *directory*, making renames/creates inside it durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes, fsync: bool = True, io=None) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    With ``fsync=False`` (test/benchmark speed mode) the rename is still
    atomic but durability is not forced.  ``io`` is an optional
    :class:`~repro.storage.faults.IoShim`; the default performs real
    filesystem operations.
    """
    if io is None:
        from repro.storage.faults import REAL_IO
        io = REAL_IO
    tmp = path + ".tmp"
    handle = io.open(tmp, "wb")
    try:
        handle.write(data)
        handle.flush()
        if fsync:
            io.crash_point("atomic:before-file-fsync")
            handle.fsync()
    finally:
        handle.close()
    io.crash_point("atomic:before-rename")
    io.replace(tmp, path)
    io.crash_point("atomic:between-rename-and-dirfsync")
    if fsync:
        io.fsync_dir(os.path.dirname(os.path.abspath(path)))
    io.crash_point("atomic:after-dirfsync")
    if _obs.enabled:
        _ATOMIC_WRITES.inc()


class DirLock:
    """An ``flock``-based exclusive lock on a data directory.

    Two servers pointed at the same ``data_dir`` would interleave WAL
    appends and corrupt the hash chain; the second opener must fail
    loudly instead.  The lock file records the owning pid so the error
    message can name the conflicting process.  The lock is released by
    :meth:`release` or automatically when the process exits (flock
    semantics), so a crashed server never wedges its directory.
    """

    LOCK_FILE = "data.lock"

    def __init__(self, data_dir: str) -> None:
        self.path = os.path.join(data_dir, self.LOCK_FILE)
        self._handle = open(self.path, "a+")
        try:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            self._handle.seek(0)
            owner = self._handle.read().strip() or "unknown pid"
            self._handle.close()
            self._handle = None
            raise LockError(
                f"data directory {data_dir!r} is already locked by another "
                f"server ({owner}); two servers must never share a WAL"
            ) from exc
        self._handle.seek(0)
        self._handle.truncate()
        self._handle.write(f"pid {os.getpid()}\n")
        self._handle.flush()

    @property
    def held(self) -> bool:
        return self._handle is not None

    def release(self) -> None:
        if self._handle is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock cannot really fail
                    pass
            self._handle.close()
            self._handle = None
