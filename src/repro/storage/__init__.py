"""CVS storage substrate: diff engine, RCS revision chains, repository,
and the disk layer under the Merkle forest.

* :mod:`repro.storage.diff` -- Myers O(ND) line diff, delta apply and
  inversion, unified-diff rendering.
* :mod:`repro.storage.rcs` -- reverse-delta revision stores with a
  deterministic serialisation (so Merkle digests commit to history).
* :mod:`repro.storage.repository` -- the multi-file repository with
  checkout/commit/log/status/tags.
* :mod:`repro.storage.atomic` -- durable file primitives
  (tmp+fsync+rename+dir-fsync writes, flock data-directory locks).
* :mod:`repro.storage.faults` -- the fault-injecting I/O shim the
  crash-recovery tests drive (torn writes, lying fsync, bit-rot...).
* :mod:`repro.storage.pagestore` -- checksummed page stores (sqlite +
  in-memory) holding per-shard checkpoint pages.
* :mod:`repro.storage.engine` -- streaming shard-tree <-> page-stream
  codec plus the quarantined-shard repair replay.
"""

from repro.storage.atomic import DirLock, LockError, atomic_write
from repro.storage.faults import ALWAYS, REAL_IO, FaultyIO, IoShim, SimulatedCrash
from repro.storage.pagestore import (
    CorruptPageError,
    MemoryPageStore,
    PageStore,
    SqlitePageStore,
    StorageError,
    open_page_store,
)

from repro.storage.diff import (
    Delta,
    Hunk,
    PatchError,
    apply_delta,
    delta_size,
    diff,
    invert_delta,
    unified_diff,
)
from repro.storage.annotate import AnnotatedLine, annotate, format_annotations
from repro.storage.keywords import (
    collapse_keywords,
    contains_keywords,
    expand_keywords,
)
from repro.storage.merge import Conflict, MergeResult, merge3, render_with_markers
from repro.storage.rcs import RcsError, Revision, RevisionStore
from repro.storage.repository import CommitRecord, Repository, RepositoryError

__all__ = [
    "Delta",
    "Hunk",
    "PatchError",
    "apply_delta",
    "delta_size",
    "diff",
    "invert_delta",
    "unified_diff",
    "AnnotatedLine",
    "annotate",
    "format_annotations",
    "collapse_keywords",
    "contains_keywords",
    "expand_keywords",
    "Conflict",
    "MergeResult",
    "merge3",
    "render_with_markers",
    "RcsError",
    "Revision",
    "RevisionStore",
    "CommitRecord",
    "Repository",
    "RepositoryError",
    "DirLock",
    "LockError",
    "atomic_write",
    "ALWAYS",
    "REAL_IO",
    "FaultyIO",
    "IoShim",
    "SimulatedCrash",
    "CorruptPageError",
    "MemoryPageStore",
    "PageStore",
    "SqlitePageStore",
    "StorageError",
    "open_page_store",
]
