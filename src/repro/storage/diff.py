"""A line-oriented diff engine (Myers O(ND)) with RCS-style deltas.

CVS stores every revision of a file as a chain of line deltas, so the
versioned store (:mod:`repro.storage.rcs`) needs these primitives:

* :func:`diff` -- the shortest edit script between two line sequences,
  via Myers' greedy O(ND) algorithm;
* :func:`apply_delta` -- replay a delta onto a base sequence (with
  context checking, so a corrupted delta raises :class:`PatchError`);
* :func:`invert_delta` -- the exact inverse delta, used to build
  reverse-delta revision chains;
* :func:`unified_diff` -- human-readable rendering for logs/examples.

A delta is a tuple of :class:`Hunk` objects addressed in *original*
coordinates (0-based), sorted and non-overlapping -- mirroring RCS
``d``/``a`` commands.
"""

from __future__ import annotations

from dataclasses import dataclass


class PatchError(Exception):
    """Raised when a delta cannot be applied to the given base."""


@dataclass(frozen=True)
class Hunk:
    """One edit: at line ``start`` of the original, remove the lines
    ``deleted`` and splice in ``inserted``.

    A pure insertion has ``deleted == ()``; a pure deletion has
    ``inserted == ()``.
    """

    start: int
    deleted: tuple[str, ...]
    inserted: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("hunk start must be non-negative")
        if not self.deleted and not self.inserted:
            raise ValueError("empty hunk")


Delta = tuple[Hunk, ...]


def diff(a: list[str], b: list[str]) -> Delta:
    """The shortest edit script turning ``a`` into ``b``."""
    if a == b:
        return ()
    trace = _myers_trace(a, b)
    ops = _backtrack(a, b, trace)
    return _coalesce(a, b, ops)


def _myers_trace(a: list[str], b: list[str]) -> list[dict[int, int]]:
    """Run Myers' forward search; returns the V-map snapshot per step d."""
    n, m = len(a), len(b)
    v: dict[int, int] = {1: 0}
    trace: list[dict[int, int]] = []
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)
            else:
                x = v.get(k - 1, 0) + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                return trace
    raise AssertionError("Myers search failed to terminate")  # pragma: no cover


def _backtrack(a: list[str], b: list[str], trace: list[dict[int, int]]) -> list[tuple[str, int, int]]:
    """Recover the edit script from the Myers trace.

    Returns forward-ordered primitive ops: ``("del", x, -1)`` removes
    ``a[x]``; ``("ins", x, y)`` inserts ``b[y]`` before position ``x``
    of the original.  Within the script, ``x`` positions are
    non-decreasing and insertion sources ``y`` are increasing.
    """
    ops: list[tuple[str, int, int]] = []
    x, y = len(a), len(b)
    for d in range(len(trace) - 1, 0, -1):
        # trace[d] is the V-map as it stood entering level d, i.e. the
        # state after level d-1 -- exactly what the step back from
        # level d needs.
        v = trace[d]
        k = x - y
        if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v.get(prev_k, 0)
        prev_y = prev_x - prev_k
        # Undo the trailing snake (diagonal / matching lines).
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
        if x == prev_x:
            y -= 1
            ops.append(("ins", x, y))
        else:
            x -= 1
            ops.append(("del", x, -1))
    ops.reverse()
    return ops


def _coalesce(a: list[str], b: list[str], ops: list[tuple[str, int, int]]) -> Delta:
    """Group adjacent primitive ops into hunks.

    An op belongs to the current hunk when it touches the hunk's
    moving front (``start + deletions so far``); replacing a contiguous
    block deletes and inserts at the same front, so interleaved
    del/ins runs coalesce into a single replace hunk.
    """
    hunks: list[Hunk] = []
    start = -1
    deleted: list[str] = []
    inserted: list[str] = []

    def flush() -> None:
        if start >= 0 and (deleted or inserted):
            hunks.append(Hunk(start=start, deleted=tuple(deleted), inserted=tuple(inserted)))

    for kind, x, y in ops:
        front = start + len(deleted)
        if start < 0 or x != front:
            flush()
            start = x
            deleted = []
            inserted = []
        if kind == "del":
            deleted.append(a[x])
        else:
            inserted.append(b[y])
    flush()
    return tuple(hunks)


def apply_delta(base: list[str], delta: Delta) -> list[str]:
    """Apply ``delta`` to ``base``, verifying deleted-line context."""
    out: list[str] = []
    position = 0
    for hunk in delta:
        if hunk.start < position:
            raise PatchError(f"overlapping or unsorted hunk at line {hunk.start}")
        if hunk.start + len(hunk.deleted) > len(base):
            raise PatchError(f"hunk at line {hunk.start} extends past end of base")
        out.extend(base[position:hunk.start])
        actual = base[hunk.start:hunk.start + len(hunk.deleted)]
        if actual != list(hunk.deleted):
            raise PatchError(f"context mismatch at line {hunk.start}: delta expects {hunk.deleted!r}, base has {tuple(actual)!r}")
        out.extend(hunk.inserted)
        position = hunk.start + len(hunk.deleted)
    out.extend(base[position:])
    return out


def invert_delta(delta: Delta) -> Delta:
    """The delta that exactly undoes ``delta``.

    Each hunk swaps its deleted/inserted lines; starts are re-based
    into post-application coordinates by tracking the running length
    drift of the preceding hunks.
    """
    inverted: list[Hunk] = []
    drift = 0
    for hunk in delta:
        inverted.append(
            Hunk(start=hunk.start + drift, deleted=hunk.inserted, inserted=hunk.deleted)
        )
        drift += len(hunk.inserted) - len(hunk.deleted)
    return tuple(inverted)


def delta_size(delta: Delta) -> int:
    """Total number of changed lines a delta carries (storage cost)."""
    return sum(len(h.deleted) + len(h.inserted) for h in delta)


def unified_diff(
    a: list[str],
    b: list[str],
    from_label: str = "a",
    to_label: str = "b",
    context: int = 3,
) -> str:
    """Render a unified diff, for logs and examples."""
    delta = diff(a, b)
    if not delta:
        return ""
    lines = [f"--- {from_label}", f"+++ {to_label}"]
    groups = _group_hunks(delta, context, len(a))
    drift = 0
    for group in groups:
        lines.extend(_render_group(a, group, context, drift))
        drift += sum(len(h.inserted) - len(h.deleted) for h in group)
    return "\n".join(lines) + "\n"


def _group_hunks(delta: Delta, context: int, a_len: int) -> list[list[Hunk]]:
    """Split hunks into groups whose context windows would overlap."""
    groups: list[list[Hunk]] = []
    current: list[Hunk] = []
    for hunk in delta:
        if current:
            previous = current[-1]
            gap_start = previous.start + len(previous.deleted)
            if hunk.start - gap_start <= 2 * context:
                current.append(hunk)
                continue
            groups.append(current)
        current = [hunk]
    if current:
        groups.append(current)
    return groups


def _render_group(a: list[str], group: list[Hunk], context: int, drift: int) -> list[str]:
    first, last = group[0], group[-1]
    lo = max(0, first.start - context)
    hi = min(len(a), last.start + len(last.deleted) + context)
    a_count = hi - lo
    b_count = a_count + sum(len(h.inserted) - len(h.deleted) for h in group)
    b_lo = lo + drift  # drift of all earlier groups
    out = [f"@@ -{lo + 1},{a_count} +{b_lo + 1},{b_count} @@"]
    position = lo
    for hunk in group:
        for line in a[position:hunk.start]:
            out.append(" " + line)
        for line in hunk.deleted:
            out.append("-" + line)
        for line in hunk.inserted:
            out.append("+" + line)
        position = hunk.start + len(hunk.deleted)
    for line in a[position:hi]:
        out.append(" " + line)
    return out
