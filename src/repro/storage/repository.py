"""A multi-file CVS repository built on revision stores.

The paper treats the CVS server as a database of items where
``checkout <file names>`` reads and ``commit <file names>`` updates.
:class:`Repository` provides that surface over per-file
:class:`~repro.storage.rcs.RevisionStore` chains, plus logs, status,
and tags.  It is a pure data structure: the trusted/untrusted servers
store its per-file serialisations as Merkle-tree values, so the root
digest commits to the *entire history* of every file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.rcs import Revision, RevisionStore


class RepositoryError(Exception):
    """Raised for unknown paths and conflicting operations."""


@dataclass(frozen=True)
class CommitRecord:
    """What one ``commit`` call produced: path -> new revision."""

    author: str
    log_message: str
    timestamp: int
    revisions: dict[str, Revision] = field(default_factory=dict)


class Repository:
    """An in-memory CVS repository: path -> revision store."""

    def __init__(self) -> None:
        self._files: dict[str, RevisionStore] = {}
        self._tags: dict[str, dict[str, str]] = {}  # tag -> {path: revnum}
        self._commits: list[CommitRecord] = []

    # -- queries -----------------------------------------------------------

    def paths(self, include_dead: bool = False) -> list[str]:
        """All file paths, sorted; dead (removed) files excluded by default."""
        return sorted(
            path
            for path, store in self._files.items()
            if include_dead or not store.is_dead
        )

    def __contains__(self, path: str) -> bool:
        store = self._files.get(path)
        return store is not None and not store.is_dead

    def checkout(self, path: str, revision: str | None = None) -> list[str]:
        """Content of ``path`` at ``revision`` (default head)."""
        store = self._store(path)
        if revision is None and store.is_dead:
            raise RepositoryError(f"{path!r} has been removed")
        return store.checkout(revision)

    def checkout_all(self) -> dict[str, list[str]]:
        """A working copy: every live file at its head revision."""
        return {path: self.checkout(path) for path in self.paths()}

    def log(self, path: str) -> list[Revision]:
        return self._store(path).log()

    def history(self) -> list[CommitRecord]:
        """All commit records, oldest first."""
        return list(self._commits)

    def head_revision(self, path: str) -> str:
        number = self._store(path).head_number
        if number is None:
            raise RepositoryError(f"{path!r} has no revisions")
        return number

    def _store(self, path: str) -> RevisionStore:
        store = self._files.get(path)
        if store is None:
            raise RepositoryError(f"unknown path {path!r}")
        return store

    # -- mutation -----------------------------------------------------------

    def commit(
        self,
        author: str,
        changes: dict[str, list[str] | None],
        log_message: str = "",
        timestamp: int = 0,
    ) -> CommitRecord:
        """Commit a set of changes; ``None`` content removes the file.

        Returns the :class:`CommitRecord` with the new revision of each
        changed path.
        """
        if not changes:
            raise RepositoryError("empty commit")
        record = CommitRecord(author=author, log_message=log_message, timestamp=timestamp)
        for path, content in sorted(changes.items()):
            store = self._files.get(path)
            if content is None:
                if store is None:
                    raise RepositoryError(f"cannot remove unknown path {path!r}")
                record.revisions[path] = store.remove(author, log_message, timestamp)
                continue
            if store is None:
                store = RevisionStore()
                self._files[path] = store
                record.revisions[path] = store.commit(content, author, log_message, timestamp)
            elif store.is_dead:
                record.revisions[path] = store.resurrect(content, author, log_message, timestamp)
            else:
                record.revisions[path] = store.commit(content, author, log_message, timestamp)
        self._commits.append(record)
        return record

    def tag(self, name: str, paths: list[str] | None = None) -> None:
        """Snapshot the head revisions of ``paths`` (default: all) as a tag."""
        if name in self._tags:
            raise RepositoryError(f"tag {name!r} already exists")
        selected = paths if paths is not None else self.paths()
        self._tags[name] = {path: self.head_revision(path) for path in selected}

    def checkout_tag(self, name: str) -> dict[str, list[str]]:
        """Working copy pinned at a tag."""
        pinned = self._tags.get(name)
        if pinned is None:
            raise RepositoryError(f"unknown tag {name!r}")
        return {path: self.checkout(path, number) for path, number in pinned.items()}

    # -- Merkle integration ----------------------------------------------------

    def serialize_file(self, path: str) -> bytes:
        """The Merkle-tree value for one path (its full history)."""
        return self._store(path).serialize()

    @staticmethod
    def deserialize_file(blob: bytes) -> RevisionStore:
        return RevisionStore.deserialize(blob)

    def status(self, working_copy: dict[str, list[str]]) -> dict[str, str]:
        """Compare a working copy to the repository heads.

        Returns path -> one of 'up-to-date', 'modified', 'unknown',
        'needs-checkout' -- the information ``cvs status`` reports.
        """
        report: dict[str, str] = {}
        live = set(self.paths())
        for path, content in sorted(working_copy.items()):
            if path not in live:
                report[path] = "unknown"
            elif content == self.checkout(path):
                report[path] = "up-to-date"
            else:
                report[path] = "modified"
        for path in sorted(live - set(working_copy)):
            report[path] = "needs-checkout"
        return report
