"""A fault-injecting I/O layer for the storage engine and the WAL.

Durability code is exactly as trustworthy as the worst thing the disk
can do to it, so this module gives the recovery tests a disk that does
those things on purpose:

* **torn writes** -- a crash persists only a prefix of un-fsynced
  appended data (page-cache writeback is not atomic);
* **short writes** -- a ``write()`` stores only part of its buffer and
  then fails;
* **failed fsync** -- ``fsync`` raises (EIO), as real disks do;
* **lying fsync** -- ``fsync`` reports success but the data is still
  volatile and a crash discards it (the infamous consumer-drive cache);
* **bit-rot on read** -- a stored page comes back with a flipped byte;
* **ENOSPC** -- writes fail once a byte budget is exhausted;
* **crash points** -- the engine announces every interesting moment
  (mid page write, post checkpoint-commit, between rename and directory
  fsync, mid compaction) and the plan can kill the process there.

The model is a *durable image* per file: writes hit the real filesystem
immediately (the running process sees its own writes, like an OS page
cache), but the shim's durable image advances only on a successful,
honest ``fsync``/``fsync_dir``.  :meth:`FaultyIO.simulate_crash`
rewrites every touched file back to its durable image -- precisely what
power loss does to un-synced state -- after which the recovery path runs
against the survivors.

:class:`RealIO` is the production pass-through; every durability
primitive in :mod:`repro.net.wal` and :mod:`repro.storage.pagestore`
routes through one of these shims.
"""

from __future__ import annotations

import errno
import os
import random

#: sentinel plan value: fire on every occurrence, not just the Nth.
ALWAYS = "always"


class SimulatedCrash(BaseException):
    """The fault plan killed the process at a crash point.

    Derives from ``BaseException`` so ordinary ``except Exception``
    cleanup handlers cannot accidentally swallow the "power is gone"
    signal and keep writing.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point}")
        self.point = point


class _RealFile:
    """Thin wrapper giving real files the shim handle surface."""

    def __init__(self, handle) -> None:
        self._handle = handle

    def write(self, data: bytes) -> int:
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: int) -> None:
        self._handle.truncate(size)

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed


class IoShim:
    """The I/O surface durability code is written against.

    The base class *is* the production implementation (real filesystem,
    no faults); :class:`FaultyIO` overrides pieces of it.
    """

    def open(self, path: str, mode: str) -> _RealFile:
        return _RealFile(open(path, mode))

    def read_file(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate_file(self, path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def crash_point(self, name: str) -> None:
        """Announce an interesting durability moment; no-op for real I/O."""

    # -- page-store hooks --------------------------------------------------

    def corrupt_page(self, kind: str, shard: int, gen: int, seq: int,
                     blob: bytes) -> bytes:
        """Bit-rot hook: the blob a page read actually returns."""
        return blob

    def pre_commit(self, path: str) -> None:
        """About to commit a page-store transaction on ``path``."""

    def commit_gate(self, path: str) -> None:
        """Raise to make the commit fail (ENOSPC / I/O error)."""


#: shared production shim; stateless, so one instance serves everyone.
REAL_IO = IoShim()


class _FaultyFile:
    """A file handle whose fsync may fail or lie and whose writes may
    tear, shorten, or hit ENOSPC."""

    def __init__(self, io: "FaultyIO", path: str, handle) -> None:
        self._io = io
        self._path = path
        self._handle = handle

    def write(self, data: bytes) -> int:
        io = self._io
        io.crash_point("file:mid-write")
        budget = io._enospc_budget
        if budget is not None:
            if budget <= 0:
                raise OSError(errno.ENOSPC, "no space left on device (injected)")
            if len(data) > budget:
                # Real ENOSPC appends what fits before failing.
                self._handle.write(data[:budget])
                io._enospc_budget = 0
                raise OSError(errno.ENOSPC, "no space left on device (injected)")
            io._enospc_budget = budget - len(data)
        if io._armed("short_write") and len(data) > 1:
            kept = io._rng.randrange(1, len(data))
            self._handle.write(data[:kept])
            raise OSError(errno.EIO, f"short write: {kept}/{len(data)} bytes (injected)")
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fsync(self) -> None:
        io = self._io
        self._handle.flush()
        if io._armed("fail_fsync"):
            raise OSError(errno.EIO, "fsync failed (injected)")
        if io._armed("lying_fsync"):
            return  # claims success; the durable image does not advance
        os.fsync(self._handle.fileno())
        io._make_durable(self._path)

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: int) -> None:
        self._handle.truncate(size)

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed


class FaultyIO(IoShim):
    """An :class:`IoShim` that executes a seeded fault plan.

    Plan entries are occurrence numbers: ``crash_at={"wal:append": 3}``
    crashes the third time that point is announced; :data:`ALWAYS`
    fires every time.  All randomness (torn-tail cut points, flipped
    bytes, short-write lengths) derives from ``seed``.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_at: dict[str, int | str] | None = None,
        lying_fsync: int | str | None = None,
        fail_fsync: int | str | None = None,
        short_write: int | str | None = None,
        torn_tail: bool = True,
        enospc_after_bytes: int | None = None,
        bitrot_page: tuple[str, int] | None = None,
        bitrot_read: int | str | None = None,
        lose_commit: int | str | None = None,
        fail_commit: int | str | None = None,
    ) -> None:
        self._rng = random.Random(seed)
        self.crash_at = dict(crash_at or {})
        self.torn_tail = torn_tail
        self._plan: dict[str, int | str | None] = {
            "lying_fsync": lying_fsync,
            "fail_fsync": fail_fsync,
            "short_write": short_write,
            "bitrot_read": bitrot_read,
            "lose_commit": lose_commit,
            "fail_commit": fail_commit,
        }
        self.bitrot_page = bitrot_page
        self._enospc_budget = enospc_after_bytes
        self._hits: dict[str, int] = {}
        #: path -> durable bytes (None = durably absent)
        self._durable: dict[str, bytes | None] = {}
        #: renames whose directory entry is not yet durable
        self._pending_renames: list[tuple[str, str, bytes | None]] = []
        self.crashed = False
        self.crash_count = 0

    # -- plan bookkeeping --------------------------------------------------

    def _count(self, name: str) -> int:
        self._hits[name] = self._hits.get(name, 0) + 1
        return self._hits[name]

    def _armed(self, fault: str) -> bool:
        want = self._plan.get(fault)
        if want is None:
            return False
        hit = self._count(fault)
        return want == ALWAYS or hit == want

    def crash_point(self, name: str) -> None:
        want = self.crash_at.get(name)
        if want is None:
            return
        hit = self._count(f"crash:{name}")
        if want == ALWAYS or hit == want:
            self.crash_count += 1
            raise SimulatedCrash(name)

    # -- durable-image model -----------------------------------------------

    def _track(self, path: str) -> None:
        """First touch: whatever is on disk now is considered durable."""
        path = os.path.abspath(path)
        if path not in self._durable:
            if os.path.isfile(path):
                with open(path, "rb") as handle:
                    self._durable[path] = handle.read()
            else:
                self._durable[path] = None

    def _make_durable(self, path: str) -> None:
        path = os.path.abspath(path)
        with open(path, "rb") as handle:
            self._durable[path] = handle.read()

    def open(self, path: str, mode: str) -> _FaultyFile:
        self._track(path)
        return _FaultyFile(self, os.path.abspath(path), open(path, mode))

    def read_file(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            blob = handle.read()
        if blob and self._armed("bitrot_read"):
            position = self._rng.randrange(len(blob))
            flipped = blob[position] ^ (1 << self._rng.randrange(8))
            blob = blob[:position] + bytes([flipped]) + blob[position + 1:]
        return blob

    def replace(self, src: str, dst: str) -> None:
        src, dst = os.path.abspath(src), os.path.abspath(dst)
        self._track(src)
        self._track(dst)
        # What the new name will durably hold once the directory entry
        # is synced: the *durable* content of the source file.
        self._pending_renames.append((src, dst, self._durable.get(src)))
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        self._track(path)
        os.remove(path)
        # Like rename, an unlink is only durable after a directory
        # fsync; keep the durable image so a crash resurrects the file.
        self._pending_renames.append((os.path.abspath(path), "", None))

    def fsync_dir(self, path: str) -> None:
        if self._armed("fail_fsync"):
            raise OSError(errno.EIO, "directory fsync failed (injected)")
        if self._armed("lying_fsync"):
            return
        super().fsync_dir(path)
        directory = os.path.abspath(path)
        remaining: list[tuple[str, str, bytes | None]] = []
        for src, dst, image in self._pending_renames:
            if os.path.dirname(src) != directory and \
                    (not dst or os.path.dirname(dst) != directory):
                remaining.append((src, dst, image))
                continue
            if dst:
                self._durable[dst] = image
            self._durable[src] = None
        self._pending_renames = remaining

    def truncate_file(self, path: str, size: int) -> None:
        self._track(path)
        super().truncate_file(path, size)

    # -- page-store hooks --------------------------------------------------

    def corrupt_page(self, kind: str, shard: int, gen: int, seq: int,
                     blob: bytes) -> bytes:
        target = self.bitrot_page
        if target is None or not blob:
            return blob
        want_kind, want_shard = target
        if want_kind not in (kind, "any") or want_shard not in (shard, -1):
            return blob
        # Rot the first matching page read, once.
        self.bitrot_page = None
        position = self._rng.randrange(len(blob))
        flipped = blob[position] ^ (1 << self._rng.randrange(8))
        return blob[:position] + bytes([flipped]) + blob[position + 1:]

    def pre_commit(self, path: str) -> None:
        if self._plan.get("lose_commit") is None:
            return
        if self._armed("lose_commit"):
            # Model a lying fsync inside the database engine: remember
            # the pre-commit file image; a crash rolls back to it even
            # though the engine reported the commit durable.
            path = os.path.abspath(path)
            if os.path.isfile(path):
                with open(path, "rb") as handle:
                    self._durable[path] = handle.read()
            else:
                self._durable[path] = None

    def commit_gate(self, path: str) -> None:
        if self._enospc_budget is not None and self._enospc_budget <= 0:
            raise OSError(errno.ENOSPC, "no space left on device (injected)")
        if self._armed("fail_commit"):
            raise OSError(errno.EIO, "commit failed (injected)")

    # -- the crash ---------------------------------------------------------

    def simulate_crash(self) -> None:
        """Lose all volatile state: rewrite every touched file back to
        its durable image (optionally keeping a torn prefix of appended
        but un-synced tails)."""
        self.crashed = True
        self._pending_renames = []
        for path, image in self._durable.items():
            exists = os.path.isfile(path)
            if image is None:
                if exists:
                    os.remove(path)
                continue
            current = b""
            if exists:
                with open(path, "rb") as handle:
                    current = handle.read()
            if current == image:
                continue
            survivor = image
            if (self.torn_tail and len(current) > len(image)
                    and current.startswith(image)):
                # The un-synced tail of an append-mode file: page
                # writeback may have persisted any prefix of it.
                tail = current[len(image):]
                kept = self._rng.randrange(0, len(tail) + 1)
                survivor = image + tail[:kept]
            with open(path, "wb") as handle:
                handle.write(survivor)
