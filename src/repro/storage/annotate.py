"""``cvs annotate`` -- per-line revision/author attribution (blame).

Walks a file's revision history oldest-to-newest, pushing attributions
through each revision's diff: lines surviving a revision keep their
attribution, lines a revision introduces are attributed to it.  Works
on any :class:`~repro.storage.rcs.RevisionStore` (trunk; branches are
annotated by walking the branch point then the branch chain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.diff import diff
from repro.storage.rcs import RevisionStore


@dataclass(frozen=True)
class AnnotatedLine:
    """One line with the revision that introduced it."""

    text: str
    revision: str
    author: str


def _push_attribution(
    old_lines: list[AnnotatedLine],
    new_text: list[str],
    revision: str,
    author: str,
) -> list[AnnotatedLine]:
    """Carry attributions across one revision step."""
    delta = diff([line.text for line in old_lines], new_text)
    out: list[AnnotatedLine] = []
    position = 0
    for hunk in delta:
        out.extend(old_lines[position:hunk.start])
        out.extend(AnnotatedLine(text=text, revision=revision, author=author)
                   for text in hunk.inserted)
        position = hunk.start + len(hunk.deleted)
    out.extend(old_lines[position:])
    return out


def annotate(store: RevisionStore, revision: str | None = None) -> list[AnnotatedLine]:
    """Blame for ``revision`` (default: the trunk head)."""
    log = store.log()
    if not log:
        return []
    target = revision or store.head_number

    if target.count(".") >= 3:
        return _annotate_branch(store, target)

    annotated: list[AnnotatedLine] = []
    for meta in log:
        content = store.checkout(meta.number)
        annotated = _push_attribution(annotated, content, meta.number, meta.author)
        if meta.number == target:
            return annotated
    raise ValueError(f"unknown revision {target!r}")


def _annotate_branch(store: RevisionStore, target: str) -> list[AnnotatedLine]:
    branch_id, _, step_text = target.rpartition(".")
    base = store.branch_base(branch_id)
    annotated = annotate(store, base)
    step = int(step_text)
    for index, meta in enumerate(store.branch_log(branch_id), start=1):
        content = store.checkout(meta.number)
        annotated = _push_attribution(annotated, content, meta.number, meta.author)
        if index == step:
            return annotated
    raise ValueError(f"unknown revision {target!r}")


def format_annotations(lines: list[AnnotatedLine], width: int = 8) -> list[str]:
    """The classic ``annotate`` rendering: ``rev (author): text``."""
    if not lines:
        return []
    rev_width = max(len(line.revision) for line in lines)
    author_width = max(len(line.author) for line in lines)
    return [
        f"{line.revision:<{rev_width}} ({line.author:<{author_width}}): {line.text}"
        for line in lines
    ]
