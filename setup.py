from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Trusted CVS (ICDE 2006): multi-user versioning on an untrusted "
        "server, with deviation-detection protocols"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
