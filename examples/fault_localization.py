#!/usr/bin/env python3
"""Fault localisation (the paper's future-work item 1), end to end.

Protocol II tells you THAT the server deviated; with per-operation
register checkpoints, the users can afterwards pin down WHEN.  We run
the partition attack, let the sync alarm fire, pool the checkpoint
rings, and binary-scan the prefix-consistency predicate to bracket the
fault to a single global operation.

Run:  python examples/fault_localization.py
"""

from repro.core.scenarios import build_simulation, populate_database
from repro.mtree.database import VerifiedDatabase
from repro.protocols.localization import localize_fault
from repro.protocols.protocol2 import initial_state_tag
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload


def main() -> None:
    print(__doc__)
    workload = steady_workload(n_users=3, ops_per_user=16, spacing=4,
                               keyspace=6, write_ratio=0.6, seed=5)
    fork_round = workload.horizon() // 2
    attack = ForkAttack(victims=["user1"], fork_round=fork_round)
    simulation = build_simulation("protocol2", workload, attack=attack,
                                  k=4, seed=5, keep_checkpoints=True)
    report = simulation.execute()

    print(f"attack        : fork of user1 at round {fork_round}")
    print(f"detected      : {report.detected} "
          f"(round {report.detection_round}, reason: "
          f"{next(iter(report.alarms.values())).reason[:60]}...)")
    true_ctr = simulation.server.observed_deviation_ctr
    print(f"ground truth  : first deviating response was global operation #{true_ctr}")
    print()

    # Pool the users' checkpoint rings (out-of-band, post-alarm).
    logs = {u.user_id: u.client.checkpoints.items() for u in simulation.users}
    sizes = {user: len(log) for user, log in logs.items()}
    print(f"checkpoint logs pooled: {sizes}")

    pristine = VerifiedDatabase(order=8)
    populate_database(pristine, workload)
    result = localize_fault(initial_state_tag(pristine.root_digest()), logs)

    print(f"prefixes consistent up to global operation #{result.consistent_upto}")
    lower, upper = result.bracket()
    print(f"first inconsistent prefix at operation        #{result.inconsistent_at}")
    print()
    print(f"=> the fault happened in operations ({lower}, {upper}]")
    inside = lower <= true_ctr + 1 and upper >= true_ctr
    print(f"=> ground-truth operation #{true_ctr} inside the bracket: {inside}")


if __name__ == "__main__":
    main()
