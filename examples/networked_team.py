#!/usr/bin/env python3
"""Trusted CVS over real sockets: a deployable client/server session.

Starts the TCP server (the untrusted party) in a background thread,
connects two verifying clients over localhost, does real work, then
runs the Protocol II synchronisation check over registers the users
exchange among themselves.  Finally the server operator "forks" the
state to show two users one history each -- and the same register
exchange refuses to reconcile.

Run:  python examples/networked_team.py
"""

from repro.net import RemoteClient, serve_in_thread, sync_check


def main() -> None:
    print(__doc__)
    server = serve_in_thread(order=8)
    host, port = server.address
    genesis = server.initial_root_digest()
    print(f"server listening on {host}:{port}")
    print(f"genesis root (common knowledge): {genesis.hex()[:16]}...\n")

    alice = RemoteClient(host, port, "alice", genesis)
    bob = RemoteClient(host, port, "bob", genesis)

    # real work over the wire, every byte verified
    alice.put(b"src/common.h", b"#define VERSION 1")
    alice.put(b"src/main.c", b"int main() { return VERSION; }")
    print("alice committed src/common.h and src/main.c")
    print(f"bob reads common.h    : {bob.get(b'src/common.h').decode()}")
    bob.put(b"src/common.h", b"#define VERSION 2")
    print("bob bumped the version")
    print(f"alice sees the bump   : {alice.get(b'src/common.h').decode()}")
    listing = alice.scan(b"src/", b"src/\xff")
    print(f"alice's verified scan : {[k.decode() for k, _ in listing]}\n")

    # the users meet (mail, chat, a hallway) and compare registers
    registers = {"alice": alice.registers(), "bob": bob.registers()}
    print(f"sync check over exchanged registers: "
          f"{'CONSISTENT' if sync_check(genesis, registers) else 'FORKED'}")

    # now the operator turns malicious: bob gets a private fork
    with server.state_lock:
        stale = server.state.clone()
    alice.put(b"src/main.c", b"int main() { return 0; } /* alice v2 */")
    with server.state_lock:
        live, server.state = server.state, stale
    bob.put(b"src/main.c", b"int main() { return 1; } /* bob's world */")
    bob_registers = bob.registers()
    with server.state_lock:
        server.state = live
    alice.get(b"src/main.c")

    registers = {"alice": alice.registers(), "bob": bob_registers}
    print(f"sync check after the operator forked bob:  "
          f"{'CONSISTENT' if sync_check(genesis, registers) else 'FORKED -- server busted'}")

    alice.close()
    bob.close()
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
