#!/usr/bin/env python3
"""The attack gallery: every malicious-server strategy against every
client protocol.

Rows are attacks (the violation classes of paper Section 1); columns
are protocols.  Each cell reports whether the attack was detected and
how fast.  The naive client (today's CVS) misses everything; the
paper's protocols catch everything that actually deviates.

Run:  python examples/attack_gallery.py
"""

from repro.analysis import format_table
from repro.core import build_simulation
from repro.server.attacks import (
    CounterReplayAttack,
    DropCommitAttack,
    ForkAttack,
    HonestBehavior,
    SignatureForgeAttack,
    StaleRootReplayAttack,
    TamperValueAttack,
)
from repro.simulation.workload import epoch_workload, steady_workload

EPOCH = 30
PROTOCOLS = ("naive", "protocol1", "protocol2", "protocol3")


def make_workload(protocol: str, seed: int):
    if protocol == "protocol3":
        return epoch_workload(n_users=3, epoch_length=EPOCH, epochs=8,
                              keyspace=6, seed=seed)
    if protocol == "protocol1":
        return steady_workload(3, 10, spacing=8, keyspace=6, write_ratio=0.6, seed=seed)
    return steady_workload(3, 14, spacing=4, keyspace=6, write_ratio=0.6, seed=seed)


ATTACKS = [
    ("honest (control)", lambda r: HonestBehavior()),
    ("fork / partition", lambda r: ForkAttack(victims=["user1"], fork_round=r)),
    ("drop commit", lambda r: DropCommitAttack(victim="user1", drop_round=r)),
    ("stale-root replay", lambda r: StaleRootReplayAttack(victim="user2", freeze_round=r)),
    ("tamper (raw)", lambda r: TamperValueAttack(victim="user0", tamper_round=r)),
    ("tamper (forged VO)", lambda r: TamperValueAttack(victim="user0", tamper_round=r, forge_proof=True)),
    ("counter replay", lambda r: CounterReplayAttack(victim="user0", replay_round=r)),
    ("signature forge", lambda r: SignatureForgeAttack(forge_round=r)),
]


def cell(protocol: str, attack_factory, seed: int = 7) -> str:
    workload = make_workload(protocol, seed)
    trigger = int(workload.horizon() * 0.25)
    attack = attack_factory(trigger)
    simulation = build_simulation(protocol, workload, attack=attack,
                                  k=4, epoch_length=EPOCH, seed=seed)
    report = simulation.execute()
    if report.false_alarm:
        return "FALSE ALARM"
    if report.detected:
        return f"caught (+{report.detection_delay_rounds()}r)"
    if report.first_deviation_round is not None:
        return "MISSED"
    return "no deviation"


def main() -> None:
    print(__doc__)
    rows = []
    for name, factory in ATTACKS:
        row = [name]
        for protocol in PROTOCOLS:
            row.append(cell(protocol, factory))
        rows.append(row)
    print(format_table(["attack"] + list(PROTOCOLS), rows,
                       title="Detection matrix (delay in rounds after deviation onset)"))
    print()
    print("notes: 'no deviation' = the attack never fired / never caused a")
    print("deviating response in this run (e.g. signature forging is a no-op")
    print("for protocols that do not carry signatures).")


if __name__ == "__main__":
    main()
