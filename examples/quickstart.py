#!/usr/bin/env python3
"""Quickstart: a verified CVS in thirty lines.

The client trusts nothing but a single 32-byte root digest.  Every
checkout, commit, log, and diff is verified against it; a compromised
server raises instead of corrupting your working copy.

Run:  python examples/quickstart.py
"""

from repro.core import CvsClient, CvsServer


def main() -> None:
    server = CvsServer()                      # the (un)trusted server
    alice = CvsClient(server, author="alice")  # keeps only a root digest

    # Build up a tiny project.
    alice.commit("hello.c", ['#include <stdio.h>',
                             'int main() { printf("hi\\n"); }'], "initial import")
    alice.commit("hello.c", ['#include <stdio.h>',
                             'int main() { printf("hello, world\\n"); return 0; }'],
                 "be polite, return 0")
    alice.commit("Makefile", ["hello: hello.c", "\tcc -o hello hello.c"], "build file")

    print("files:", alice.paths())
    print()
    print("verified checkout of hello.c:")
    for line in alice.checkout("hello.c"):
        print("   ", line)
    print()

    print("history of hello.c:")
    for revision in alice.log("hello.c"):
        print(f"    {revision.number}  {revision.author:8s}  {revision.log_message}")
    print()

    print("what changed between 1.1 and head:")
    print(alice.diff("hello.c", "1.1"))

    print(f"client trust state: one digest = {alice.root_digest.hex()}")
    print("(the server stores everything; the client can verify anything)")


if __name__ == "__main__":
    main()
