#!/usr/bin/env python3
"""The paper's motivating scenario (Section 3.1 / Figure 1).

A programmer in the US commits a change to Common.h and goes offline;
a programmer in China makes causally dependent changes.  A compromised
server mounts the partition attack: it shows the US branch one history
and the China branch another.

We run the exact same workload three times:

* under today's CVS (the naive client)    -> the fork goes unnoticed;
* under Protocol II with sync period k    -> some user detects it
  before anyone completes more than k operations after the fork;
* under Protocol III (no broadcast)       -> the epoch audit catches it
  within two epochs.

Run:  python examples/distributed_team.py
"""

from repro.analysis import detection_metrics, format_table
from repro.core import build_simulation
from repro.server.attacks import ForkAttack
from repro.simulation.workload import epoch_workload, partitionable_workload


def run_partition(protocol: str, k: int = 4, epoch_length: int = 30):
    if protocol == "protocol3":
        workload = epoch_workload(n_users=3, epoch_length=epoch_length,
                                  epochs=8, keyspace=8, seed=11)
        victims = ["user2"]
        fork_round = int(epoch_length * 2.5)
    else:
        workload = partitionable_workload(group_a_size=1, group_b_size=2,
                                          k=k, seed=11)
        victims = workload.metadata["group_b"]
        fork_round = workload.metadata["fork_round"]
    attack = ForkAttack(victims=victims, fork_round=fork_round)
    simulation = build_simulation(protocol, workload, attack=attack,
                                  k=k, epoch_length=epoch_length, seed=11)
    return simulation.execute()


def main() -> None:
    print(__doc__)
    rows = []
    for protocol in ("naive", "protocol2", "protocol3"):
        report = run_partition(protocol)
        metrics = detection_metrics(report)
        rows.append([
            protocol,
            metrics.deviated,
            metrics.detected,
            metrics.detection_delay_rounds,
            metrics.ops_after_deviation if metrics.detected else None,
            metrics.reasons[0][:48] + "..." if metrics.reasons else "-",
        ])
    print(format_table(
        ["protocol", "server forked?", "detected?", "delay (rounds)",
         "ops after fork", "first alarm"],
        rows,
        title="Partition attack (Figure 1) against three clients",
    ))
    print()
    print("Today's CVS (naive) is silently split in two; the paper's")
    print("protocols turn the same attack into a bounded-delay alarm.")


if __name__ == "__main__":
    main()
