#!/usr/bin/env python3
"""The outsourcing model (paper Section 1, last paragraph).

"Our techniques also have applications in the outsourcing model where
multiple users own a common database maintained by an untrusted
third-party vendor."

Here the database is a customer table outsourced to a vendor.  The
owner issues point and range queries; every answer comes back with a
verification object.  We then let the vendor misbehave in three ways --
tampering with a row, hiding rows from a range scan, and replaying a
stale snapshot -- and show each one being caught by proof verification.

Run:  python examples/outsourced_database.py
"""

from repro.crypto.hashing import hash_leaf
from repro.mtree.database import (
    ClientVerifier,
    RangeQuery,
    ReadQuery,
    VerifiedDatabase,
    WriteQuery,
)
from repro.mtree.proofs import LeafSnapshot, ProofError, RangeProof, ReadProof


def load_customers(db, client):
    customers = [
        ("cust:0001", "Ada Lovelace,London,premium"),
        ("cust:0002", "Charles Babbage,London,basic"),
        ("cust:0003", "Grace Hopper,Arlington,premium"),
        ("cust:0004", "Alan Turing,Wilmslow,basic"),
        ("cust:0005", "Edsger Dijkstra,Nuenen,premium"),
    ]
    for key, row in customers:
        query = WriteQuery(key.encode(), row.encode())
        client.apply(query, db.execute(query))
    return customers


def main() -> None:
    print(__doc__)
    vendor = VerifiedDatabase(order=4)          # the untrusted vendor
    owner = ClientVerifier(vendor.root_digest(), order=4)
    load_customers(vendor, owner)
    print(f"owner's trust state: {owner.root_digest.hex()[:16]}... (32 bytes)\n")

    # -- honest queries -----------------------------------------------------
    query = ReadQuery(b"cust:0003")
    row = owner.apply(query, vendor.execute(query))
    print("verified point read :", row.decode())

    scan = RangeQuery(b"cust:0002", b"cust:0004")
    rows = owner.apply(scan, vendor.execute(scan))
    print("verified range scan :", [k.decode() for k, _ in rows])
    print()

    # -- attack 1: tampered row ----------------------------------------------
    result = vendor.execute(ReadQuery(b"cust:0001"))
    forged_value = b"Ada Lovelace,London,CANCELLED"
    position = result.proof.leaf.keys.index(b"cust:0001")
    entry_digests = list(result.proof.leaf.entry_digests)
    entry_digests[position] = hash_leaf(b"cust:0001", forged_value)
    forged = ReadProof(
        key=result.proof.key, value=forged_value,
        internals=result.proof.internals,
        leaf=LeafSnapshot(keys=result.proof.leaf.keys, entry_digests=tuple(entry_digests)),
    )
    try:
        from repro.mtree.proofs import verify_read
        verify_read(owner.root_digest, forged, b"cust:0001")
        print("attack 1 (tampered row)     : MISSED -- this must never print")
    except ProofError as exc:
        print(f"attack 1 (tampered row)     : caught -> {exc}")

    # -- attack 2: rows hidden from a range scan -------------------------------
    honest = vendor.execute(RangeQuery(b"cust:0001", b"cust:0005"))
    hidden = RangeProof(low=honest.proof.low, high=honest.proof.high,
                        root=honest.proof.root, entries=honest.proof.entries[:-2])
    try:
        from repro.mtree.proofs import verify_range
        verify_range(owner.root_digest, hidden)
        print("attack 2 (hidden rows)      : MISSED -- this must never print")
    except ProofError as exc:
        print(f"attack 2 (hidden rows)      : caught -> {exc}")

    # -- attack 3: stale snapshot replay ---------------------------------------
    stale = vendor.execute(ReadQuery(b"cust:0002"))  # snapshot now...
    update = WriteQuery(b"cust:0002", b"Charles Babbage,London,premium")
    owner.apply(update, vendor.execute(update))       # ...owner upgrades the row
    try:
        owner.apply(ReadQuery(b"cust:0002"), stale)   # vendor replays old answer
        print("attack 3 (stale snapshot)   : MISSED -- this must never print")
    except ProofError as exc:
        print(f"attack 3 (stale snapshot)   : caught -> {exc}")

    print()
    print("All three vendor attacks were rejected by VO verification;")
    print("the owner never stored more than one 32-byte digest.")


if __name__ == "__main__":
    main()
