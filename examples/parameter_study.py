#!/usr/bin/env python3
"""A parameter study with the campaign runner: the k / detection-delay
trade-off, measured properly (multiple seeds, aggregate statistics).

This is the research-tool surface a downstream user reaches for when
tuning a deployment: how often do we want to pay for a sync, and how
much detection latency does that buy back?

Run:  python examples/parameter_study.py
"""

from repro.analysis import format_table
from repro.analysis.campaign import Campaign
from repro.server.attacks import ForkAttack
from repro.simulation.workload import steady_workload


def study_k(k: int, seeds=(1, 2, 3, 4, 5)):
    campaign = Campaign(
        protocols=["protocol2"],
        seeds=list(seeds),
        workload_factory=lambda protocol, seed: steady_workload(
            3, 16, spacing=4, keyspace=6, write_ratio=0.6, seed=seed),
        attack_factories={
            "fork": lambda wl, seed: ForkAttack(
                victims=["user1"], fork_round=wl.horizon() // 2),
        },
        build_kwargs={"k": k},
    )
    (cell,) = campaign.run()
    return cell


def main() -> None:
    print(__doc__)
    rows = []
    for k in (1, 2, 4, 8, 16):
        cell = study_k(k)
        rows.append([
            k,
            f"{cell.detected}/{cell.deviated}",
            cell.false_alarms,
            round(cell.mean_delay, 1) if cell.mean_delay is not None else None,
            cell.delay_percentile(0.9),
            cell.worst_ops_after,
        ])
    print(format_table(
        ["sync period k", "caught/fired", "false alarms",
         "mean delay (rounds)", "p90 delay", "worst ops after fork"],
        rows,
        title="Protocol II: the k knob across 5 seeds (fork mid-workload)",
    ))
    print()
    print("Reading: detection stays total and false-alarm-free at every k;")
    print("the operator trades sync frequency against the rollback window.")


if __name__ == "__main__":
    main()
