#!/usr/bin/env python3
"""Release engineering on a verified repository: branches, hotfixes,
merges, and concurrent-edit updates -- all checked against one digest.

The classic CVS workflow: cut a release branch, keep developing on the
trunk, land a hotfix on the branch, merge it back.  Every checkout and
commit below is verified by the client against its tracked root digest;
the server could be anyone's machine.

Run:  python examples/release_branching.py
"""

from repro.core import CvsClient, CvsServer
from repro.storage.merge import render_with_markers


def show(title, lines):
    print(f"--- {title} ---")
    for line in lines:
        print("   ", line)
    print()


def main() -> None:
    print(__doc__)
    server = CvsServer()
    dev = CvsClient(server, author="release-eng")

    # trunk development
    dev.commit("app.c", [
        "#include <stdio.h>",
        "int main() {",
        '    printf("v1.0\\n");',
        "    return 0;",
        "}",
    ], "1.0 feature complete")

    # cut the release branch at the 1.0 revision
    branch = dev.branch("app.c")
    print(f"cut release branch {branch} at app.c {dev.log('app.c')[-1].number}\n")

    # trunk moves on
    dev.commit("app.c", [
        "#include <stdio.h>",
        "static const char *version = \"2.0-dev\";",
        "int main() {",
        '    printf("%s\\n", version);',
        "    return 0;",
        "}",
    ], "start 2.0 development")

    # a critical fix lands on the release branch
    dev.commit_on_branch("app.c", branch, [
        "#include <stdio.h>",
        "int main() {",
        '    printf("v1.0\\n");',
        "    fflush(stdout);   /* HOTFIX: unflushed output on crash */",
        "    return 0;",
        "}",
    ], "hotfix: flush stdout")
    print(f"hotfix committed as {dev.log('app.c')[-1].number} "
          f"(trunk) / {branch}.1 (branch)\n")

    show(f"release branch head ({branch}.1)", dev.checkout("app.c", f"{branch}.1"))
    show("trunk head", dev.checkout("app.c"))

    # merge the hotfix back into the trunk
    result = dev.merge_branch("app.c", branch, "merge hotfix into 2.0")
    if result.has_conflicts:
        print("merge had conflicts:")
        for line in render_with_markers(result, "trunk", branch):
            print("   ", line)
    else:
        show("trunk after merging the hotfix", dev.checkout("app.c"))

    # meanwhile: a concurrent working-copy edit, updated against the new head
    working = dev.checkout("app.c", "1.1")
    working[0] = "#include <stdio.h>  /* reviewed */"
    update = dev.update("app.c", working, base_revision="1.1")
    print(f"cvs update of a 1.1-based working copy: "
          f"{'CONFLICTS' if update.has_conflicts else 'merged cleanly'}")
    if not update.has_conflicts:
        show("updated working copy", update.lines())

    print("full history of app.c (all verified):")
    for revision in dev.log("app.c"):
        print(f"    {revision.number:8s} {revision.log_message}")
    print(f"\nclient trust state throughout: one digest "
          f"({dev.root_digest.short()}...)")


if __name__ == "__main__":
    main()
